"""detlint: determinism & purity static analysis for the reproduction.

Every number in the reproduction is regenerated from seeded simulation
runs, and two subsystems lean on that determinism being airtight: the
observability layer (``repro.obs``) promises byte-identical results with
tracing on or off, and the campaign engine (``repro.campaign``) keys a
content-addressed result cache by job payload.  A single wall-clock
read, an unseeded random draw, or a hash-order-dependent iteration
silently breaks all of it.

``detlint`` enforces those invariants statically with three rule
families (see :mod:`repro.analysis.rules` for the catalog):

* **DET** — determinism hazards in the simulation core (wall clock,
  ambient entropy, the global ``random`` module, unsorted set
  iteration, environment access).
* **OBS** — observer purity (``repro.obs`` may read simulation state
  but never mutate it; protocols reach observability only through the
  hook API).
* **CAMP** — campaign payload hygiene (JSON-safe payloads, stable
  digests) so cache keys stay comparable across runs and versions.

Run it as ``repro-experiments lint`` or ``python -m repro.analysis``;
suppress individual findings with ``# detlint: disable=RULE -- reason``
pragmas or the committed baseline (``tools/detlint_baseline.json``).
See ``docs/ANALYSIS.md`` for the workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import LintReport, lint_paths, lint_source
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import RULES, Rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]


def main(argv=None) -> int:
    """CLI entry point (``repro-experiments lint`` delegates here)."""
    from repro.analysis.__main__ import main as _main

    return _main(argv)

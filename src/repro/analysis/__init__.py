"""detlint: determinism & purity static analysis for the reproduction.

Every number in the reproduction is regenerated from seeded simulation
runs, and two subsystems lean on that determinism being airtight: the
observability layer (``repro.obs``) promises byte-identical results with
tracing on or off, and the campaign engine (``repro.campaign``) keys a
content-addressed result cache by job payload.  A single wall-clock
read, an unseeded random draw, or a hash-order-dependent iteration
silently breaks all of it.

``detlint`` enforces those invariants statically with five rule
families (see :mod:`repro.analysis.rules` for the catalog):

* **DET** — determinism hazards in the simulation core (wall clock,
  ambient entropy, the global ``random`` module, unsorted set
  iteration, environment access).
* **OBS** — observer purity (``repro.obs`` may read simulation state
  but never mutate it — directly or through any call chain; protocols
  reach observability only through the hook API).
* **CAMP** — campaign payload hygiene (JSON-safe payloads, stable
  digests) so cache keys stay comparable across runs and versions.
* **PROTO** — topology assumptions (literal replica counts, inline
  quorum arithmetic, hard-coded leader indices) outside protocol-owned
  policy; the enabler for the n-replica/leaderless/geo roadmap items.
* **PERF** — hot-path hygiene in the dispatch/send loops.

v2 analyses the whole project at once: a module/symbol index and call
graph (:mod:`repro.analysis.index`) feed an interprocedural purity pass
(:mod:`repro.analysis.interproc`), an incremental content-hash cache
(:mod:`repro.analysis.incremental`) makes warm runs free, and
:mod:`repro.analysis.sarif` renders SARIF 2.1.0 for code scanning.

Run it as ``repro-experiments lint`` or ``python -m repro.analysis``;
suppress individual findings with ``# detlint: disable=RULE -- reason``
pragmas or the committed baseline (``tools/detlint_baseline.json``).
See ``docs/ANALYSIS.md`` for the workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (
    LintReport,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.analysis.findings import Finding
from repro.analysis.incremental import LintCache
from repro.analysis.index import ProjectIndex, build_index
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import RULES, Rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintCache",
    "LintReport",
    "ProjectIndex",
    "RULES",
    "Rule",
    "build_index",
    "lint_paths",
    "lint_project",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]


def main(argv=None) -> int:
    """CLI entry point (``repro-experiments lint`` delegates here)."""
    from repro.analysis.__main__ import main as _main

    return _main(argv)

"""The detlint rule catalog.

A rule is metadata only — the matching logic lives in the per-family
checker modules (:mod:`repro.analysis.det`, :mod:`repro.analysis.purity`,
:mod:`repro.analysis.camp`).  Which modules a rule applies to is decided
by :mod:`repro.analysis.config`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One detlint rule: identifier, family, and rationale."""

    id: str
    family: str  # "DET", "OBS" or "CAMP"
    title: str
    rationale: str


_RULE_LIST = [
    Rule(
        "DET001",
        "DET",
        "wall-clock read in simulation code",
        "Simulation code must use the event loop's virtual time "
        "(`loop.now`); a wall-clock read makes results depend on host "
        "speed and breaks seeded replay.",
    ),
    Rule(
        "DET002",
        "DET",
        "ambient entropy source",
        "os.urandom / uuid.uuid4 / secrets draw from the OS entropy "
        "pool, which no seed controls; every random byte must come "
        "from a seeded stream.",
    ),
    Rule(
        "DET003",
        "DET",
        "global random module call",
        "The module-level random functions share one hidden global "
        "state; use the named per-component streams of "
        "repro.sim.rng.RngRegistry (instantiating random.Random with "
        "an explicit seed is fine).",
    ),
    Rule(
        "DET004",
        "DET",
        "environment read outside config/CLI",
        "os.environ reads scattered through library code make behaviour "
        "depend on ambient process state; route them through the "
        "accessors in repro.experiments.settings (or the CLI).",
    ),
    Rule(
        "DET005",
        "DET",
        "unsorted iteration over a set",
        "Set iteration order depends on PYTHONHASHSEED for any element "
        "containing a str; feeding it into dispatch, tie-breaking or "
        "bookkeeping makes runs irreproducible.  Iterate "
        "sorted(the_set) instead.",
    ),
    Rule(
        "DET006",
        "DET",
        "process environment mutation",
        "Writing os.environ leaks state between runs and across "
        "campaign workers; thread settings explicitly (the campaign "
        "engine removed exactly this pattern in PR 3).",
    ),
    Rule(
        "OBS001",
        "OBS",
        "observer assigns attribute on a simulation object",
        "repro.obs must stay observer-only: writing attributes on "
        "replicas/clients/clusters (beyond the sanctioned hook "
        "attributes) would let tracing change simulation behaviour.",
    ),
    Rule(
        "OBS002",
        "OBS",
        "observer calls mutating method on a simulation object",
        "Calling a state-changing method on a simulation object from "
        "repro.obs breaks the byte-identical-on/off contract the "
        "overhead guard verifies.",
    ),
    Rule(
        "OBS003",
        "OBS",
        "simulation module imports repro.obs",
        "Protocol/sim code may only reach observability through its "
        "`self.obs` hook; importing repro.obs from the simulation core "
        "would invert the dependency and invite accidental coupling.",
    ),
    Rule(
        "OBS004",
        "OBS",
        "observer touches an RNG",
        "Observers must not consume randomness: drawing from any "
        "stream (or the random module) from observer code shifts the "
        "sequence seen by the simulation.",
    ),
    Rule(
        "OBS005",
        "OBS",
        "observer mutates simulation state through a call chain",
        "The interprocedural taint pass: an observer that passes a "
        "simulation object to a helper (in any module, any number of "
        "calls deep) which mutates it breaks the byte-identical-on/off "
        "contract just as surely as a direct write — v1's per-function "
        "walk could not see this.",
    ),
    Rule(
        "CAMP001",
        "CAMP",
        "non-JSON-safe construct in a payload builder",
        "Campaign job payloads are canonicalised to JSON to form cache "
        "keys; sets, bytes and friends either fail or serialise "
        "unstably, so payload builders must stick to JSON-safe types.",
    ),
    Rule(
        "CAMP002",
        "CAMP",
        "hash()/id() in campaign code",
        "The builtin hash() is salted by PYTHONHASHSEED and id() is an "
        "address; neither may leak into cache keys or fingerprints — "
        "use hashlib over canonical JSON.",
    ),
    Rule(
        "CAMP003",
        "CAMP",
        "json.dumps without sort_keys in campaign code",
        "Unordered JSON renderings of the same payload hash "
        "differently; every json.dumps in repro.campaign must pass "
        "sort_keys=True.",
    ),
    Rule(
        "PROTO001",
        "PROTO",
        "integer literal as replica count / fault threshold",
        "A literal n/f/quorum outside repro.protocols.config freezes "
        "the 3-replica topology; counts flow from the explicit knob "
        "(ClusterProfile.n / ProtocolConfig.n) and derived quantities "
        "from fault_tolerance()/quorum_size().",
    ),
    Rule(
        "PROTO002",
        "PROTO",
        "hand-rolled quorum arithmetic",
        "f+1 / 2f+1 / len(...)//2+1 spelled out inline duplicates the "
        "quorum policy; route it through ProtocolConfig.quorum (or the "
        "quorum_size/fault_tolerance helpers) so n-replica sweeps "
        "change one place.",
    ),
    Rule(
        "PROTO003",
        "PROTO",
        "hard-coded leader-index pattern",
        "view % n arithmetic, replicas[0] and leader == 0 comparisons "
        "outside the protocol layer each re-implement leader policy; "
        "ProtocolConfig.leader_of(view) is the single owner, which a "
        "leaderless baseline can override.",
    ),
    Rule(
        "PROTO004",
        "PROTO",
        "fixed-length replica-list literal",
        "A literal [0, 1, 2]-style replica list in cluster/experiment/"
        "campaign configuration silently breaks at n != 3; build such "
        "lists from range(config.n).",
    ),
    Rule(
        "PROTO005",
        "PROTO",
        "crash/partition target bounded by a literal",
        "Fault targets drawn from randrange(3) or passed as literal "
        "indices stop covering the cluster the moment n grows; derive "
        "bounds from len(cluster.replicas) or use role targets.",
    ),
    Rule(
        "PERF001",
        "PERF",
        "hot callable reached through an attribute chain inside a loop",
        "Dispatch loops in the simulation core run millions of "
        "iterations; re-resolving a multi-hop attribute chain (or a "
        "heapq module attribute) to a known-hot callable on every "
        "iteration costs measurable wall time — bind it to a local "
        "before the loop.",
    ),
    Rule(
        "PERF002",
        "PERF",
        "per-event object construction inside a dispatch loop",
        "The event-dispatch loops are the hottest code in the tree, and "
        "the array-backed core exists precisely to eliminate per-event "
        "allocation there; a constructor call per loop iteration inside "
        "run()/run_until()/dispatch-style functions reintroduces it — "
        "preallocate, pool, or carry plain tuples instead "
        "(see repro.sim.arraycore's free-list event pool).",
    ),
]

RULES: dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}

FAMILIES = ("DET", "OBS", "CAMP", "PROTO", "PERF")


def rule_ids() -> list[str]:
    """All rule ids, in catalog order."""
    return [rule.id for rule in _RULE_LIST]

"""PERF family: avoidable overhead on the simulator's hot paths.

The dispatch loop, the timer machinery and the network send path run
millions of iterations per experiment; a repeated attribute-chain
lookup inside such a loop costs real wall time (see
``docs/SIMULATOR.md``, Performance).  PERF001 flags calls to known-hot
callables made through a multi-hop attribute chain (``self._loop
.call_after(...)``, ``self.traffic.record(...)``) — or through the
``heapq`` module object — from inside a ``while``/``for`` body.  The
fix is mechanical: bind the bound method (or function) to a local
before the loop, which also reads as a declaration of what the loop is
hot on.  One-hop calls (``local.method(...)``, ``self.method(...)``)
are the *result* of that fix and are not flagged.

PERF002 guards the allocation-free-dispatch contract the array-backed
core (``repro.sim.arraycore``) establishes: inside the loop body of a
dispatch-shaped function (``run``, ``run_*``, or anything with
``dispatch`` in its name) a capitalized-callable constructor call
allocates one object per event — exactly the cost the free-list event
pool removes.  Exception constructors (``...Error``/``...Exception``
names) are raise-path code, not per-iteration cost, and are skipped.

Like every detlint rule these are lint heuristics, not a profiler: a
cold loop that trips one can carry a pragma or a baseline entry.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import build_import_table, dotted_name
from repro.analysis.findings import CheckContext, Finding

#: Final attribute names whose calls dominate dispatch-loop profiles.
HOT_CALLABLES = frozenset(
    {
        "call_after",
        "call_at",
        "heapify",
        "heappop",
        "heappush",
        "record",
        "sample",
        "size_bytes",
        "type_name",
    }
)

#: heapq functions reached as module attributes (``heapq.heappush``):
#: one dict lookup per iteration that a module-level ``from heapq
#: import heappush`` removes.
HEAPQ_FUNCTIONS = frozenset({"heapq.heappush", "heapq.heappop", "heapq.heapify"})


def _is_dispatch_name(name: str) -> bool:
    """Whether a function name marks an event-dispatch loop (PERF002)."""
    return name == "run" or name.startswith("run_") or "dispatch" in name


def _constructor_name(func: ast.AST) -> str | None:
    """The capitalized callable name of a constructor-looking call.

    Returns None for lowercase callables, exception-looking names
    (raise-path allocations fire at most once per loop lifetime) and
    anything not reached as a plain name or attribute.
    """
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    if not name[:1].isupper():
        return None
    if name.endswith("Error") or name.endswith("Exception"):
        return None
    return name


def _attribute_hops(node: ast.AST) -> int:
    """Number of attribute lookups in a ``Name.attr1.attr2...`` chain.

    Returns 0 when the chain is not rooted in a plain name (a call or
    subscript in the chain defeats the simple bind-to-local fix).
    """
    hops = 0
    while isinstance(node, ast.Attribute):
        hops += 1
        node = node.value
    return hops if isinstance(node, ast.Name) else 0


class _PerfVisitor(ast.NodeVisitor):
    def __init__(self, context: CheckContext, tree: ast.AST):
        self.ctx = context
        self.findings: list[Finding] = []
        self.imports = build_import_table(tree)
        # Loop depth per enclosing function: a def inside a loop body
        # does not execute per iteration, so it opens a fresh scope.
        self._loop_depth_stack = [0]
        # Enclosing function names, innermost last; PERF002 only fires
        # inside dispatch-shaped functions.
        self._function_stack: list[str] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.ctx.active_rules:
            self.findings.append(self.ctx.make(rule, node, message))

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth_stack[-1] += 1
        self.generic_visit(node)
        self._loop_depth_stack[-1] -= 1

    visit_While = _visit_loop
    visit_For = _visit_loop

    def _visit_function(self, node: ast.AST) -> None:
        self._loop_depth_stack.append(0)
        self._function_stack.append(getattr(node, "name", "<lambda>"))
        self.generic_visit(node)
        self._function_stack.pop()
        self._loop_depth_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth_stack[-1] > 0:
            self._check_hot_call(node)
            if self._function_stack and _is_dispatch_name(self._function_stack[-1]):
                self._check_allocation(node)
        self.generic_visit(node)

    def _check_allocation(self, node: ast.Call) -> None:
        name = _constructor_name(node.func)
        if name is None:
            return
        self._emit(
            "PERF002",
            node,
            f"{name}() constructed inside the loop body of dispatch function "
            f"{self._function_stack[-1]}(): one allocation per event; "
            f"preallocate, pool (see repro.sim.arraycore) or carry plain "
            f"tuples instead",
        )

    def _check_hot_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        dotted = dotted_name(func, self.imports)
        if dotted in HEAPQ_FUNCTIONS:
            self._emit(
                "PERF001",
                node,
                f"{dotted}() called through the module object inside a loop "
                f"body; import {func.attr} at module level (from heapq import "
                f"{func.attr}) or bind it to a local before the loop",
            )
            return
        if func.attr in HOT_CALLABLES and _attribute_hops(func) >= 2:
            chain = dotted or f"<chain>.{func.attr}"
            self._emit(
                "PERF001",
                node,
                f"hot callable {chain}() reached through a {_attribute_hops(func)}"
                f"-hop attribute chain inside a loop body; bind it to a local "
                f"before the loop",
            )


def check(context: CheckContext, tree: ast.AST) -> list[Finding]:
    """Run the PERF family over one parsed file."""
    visitor = _PerfVisitor(context, tree)
    visitor.visit(tree)
    return visitor.findings

"""The project-wide module/symbol index detlint v2 analyses against.

v1 linted one file at a time, so every rule was function-local.  The
index parses the whole tree once and answers the two questions the
cross-module passes need:

* *What does this dotted name refer to?* — imports (including aliases,
  re-exports through package ``__init__`` files, relative imports and
  ``repro.*`` star imports) are resolved to the defining
  :class:`FunctionInfo`, so a call site in ``repro.obs`` can be chased
  into ``repro.experiments``.
* *What does this module depend on?* — the project-local import graph,
  both direct (:meth:`ProjectIndex.project_deps`) and transitive
  (:meth:`ProjectIndex.dep_closure`).  The incremental engine keys its
  cache on the content hashes of a module's dependency closure, so a
  module re-lints exactly when something its analysis could have read
  changed.

Content hashes use the campaign cache's content-addressing idiom
(sha256 over the bytes that matter, nothing ambient): the hash of a
module is the sha256 of its source text.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional


def content_hash(source: str) -> str:
    """sha256 of the module source — the cache identity of a module."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class FunctionInfo:
    """One function or method definition, addressable project-wide."""

    module: str
    qualname: str  # "helper" or "ClassName.method"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: list[str] = field(default_factory=list)

    @property
    def fqn(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)


@dataclass
class ModuleInfo:
    """One parsed module: source, AST, symbols and import bindings."""

    name: str
    path: str
    source: str
    tree: ast.Module
    content_hash: str
    #: local name -> absolute dotted target (``from x import y as z``
    #: binds ``z`` -> ``x.y``; ``import x.y`` binds ``x`` -> ``x``).
    imports: dict[str, str] = field(default_factory=dict)
    #: modules star-imported (``from repro.x import *``), resolved.
    star_imports: list[str] = field(default_factory=list)
    #: full dotted targets of plain ``import x.y.z`` statements — the
    #: local binding is only the root package, but the *dependency* is
    #: the whole submodule, so the graph tracks it separately.
    direct_imports: list[str] = field(default_factory=list)
    #: top-level function name -> info.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> info}.
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    #: class name -> base-class expressions (dotted names, unresolved).
    class_bases: dict[str, list[str]] = field(default_factory=dict)


def _params_of(node) -> list[str]:
    args = node.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


def _dotted_expr(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for plain Name/Attribute chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_relative(module_name: str, is_package: bool, level: int, target: str) -> str:
    """Absolute dotted name of a ``from ...x import y`` target."""
    parts = module_name.split(".")
    # Level 1 means "the containing package": for a plain module that is
    # everything but the last segment, for a package __init__ it is the
    # package itself.
    drop = level - 1 if is_package else level
    base = parts[: len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


class ProjectIndex:
    """All indexed modules plus symbol/dependency resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._closure_cache: dict[str, frozenset[str]] = {}

    # -- construction --------------------------------------------------

    def add_source(self, name: str, source: str, path: str, *, is_package: bool = False) -> ModuleInfo:
        """Parse and index one module (raises SyntaxError on bad source)."""
        tree = ast.parse(source, filename=path)
        info = ModuleInfo(
            name=name,
            path=path,
            source=source,
            tree=tree,
            content_hash=content_hash(source),
        )
        self._collect_imports(info, is_package=is_package)
        self._collect_definitions(info)
        self.modules[name] = info
        self._closure_cache.clear()
        return info

    def _collect_imports(self, info: ModuleInfo, *, is_package: bool) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.direct_imports.append(alias.name)
                    if alias.asname:
                        info.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        info.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    module = _resolve_relative(
                        info.name, is_package, node.level, node.module or ""
                    )
                else:
                    module = node.module or ""
                if not module:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        info.star_imports.append(module)
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{module}.{alias.name}"

    def _collect_definitions(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = FunctionInfo(
                    module=info.name,
                    qualname=node.name,
                    node=node,
                    params=_params_of(node),
                )
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, FunctionInfo] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[item.name] = FunctionInfo(
                            module=info.name,
                            qualname=f"{node.name}.{item.name}",
                            node=item,
                            params=_params_of(item),
                        )
                info.classes[node.name] = methods
                info.class_bases[node.name] = [
                    base for base in (_dotted_expr(b) for b in node.bases) if base
                ]

    # -- symbol resolution ---------------------------------------------

    def functions_of(self, name: str) -> Iterable[FunctionInfo]:
        info = self.modules.get(name)
        if info is None:
            return ()
        out = list(info.functions.values())
        for methods in info.classes.values():
            out.extend(methods.values())
        return out

    def all_functions(self) -> Iterable[FunctionInfo]:
        for name in self.modules:
            yield from self.functions_of(name)

    def _split_module_prefix(self, dotted: str) -> Optional[tuple[ModuleInfo, list[str]]]:
        """Longest indexed-module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return self.modules[prefix], parts[cut:]
        return None

    def resolve_function(
        self, module: str, dotted: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo a dotted name used in ``module`` refers to.

        Handles local definitions, import aliases, attribute access on
        imported modules, re-exports through ``__init__`` modules and
        star imports.  Returns ``None`` for anything that does not
        resolve to an indexed plain function or method.
        """
        if _depth > 10:  # re-export cycles cannot recurse forever
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        # A name defined right here.
        if not rest and head in info.functions:
            return info.functions[head]
        if rest and head in info.classes:
            return info.classes[head].get(rest)
        # An imported name (possibly with a trailing attribute path).
        target = info.imports.get(head)
        if target is not None:
            full = f"{target}.{rest}" if rest else target
            return self._resolve_absolute(full, _depth + 1)
        # Star imports: first match wins, in import order.
        if not rest or "." not in rest:
            for star in info.star_imports:
                found = self.resolve_function(star, dotted, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_absolute(self, dotted: str, _depth: int) -> Optional[FunctionInfo]:
        split = self._split_module_prefix(dotted)
        if split is None:
            return None
        owner, remainder = split
        if not remainder:
            return None
        return self.resolve_function(owner.name, ".".join(remainder), _depth)

    def resolve_class_methods(
        self, module: str, class_name: str, _depth: int = 0
    ) -> dict[str, FunctionInfo]:
        """Methods of ``class_name`` including indexed base classes."""
        if _depth > 10:
            return {}
        info = self.modules.get(module)
        if info is None or class_name not in info.classes:
            return {}
        methods: dict[str, FunctionInfo] = {}
        for base in info.class_bases.get(class_name, ()):
            base_def = self._locate_class(module, base, _depth + 1)
            if base_def is not None:
                methods.update(
                    self.resolve_class_methods(base_def[0], base_def[1], _depth + 1)
                )
        methods.update(info.classes[class_name])
        return methods

    def _locate_class(
        self, module: str, dotted: str, _depth: int
    ) -> Optional[tuple[str, str]]:
        """(module, class) a dotted class reference points at."""
        if _depth > 10:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest and head in info.classes:
            return (module, head)
        target = info.imports.get(head)
        if target is not None:
            full = f"{target}.{rest}" if rest else target
            split = self._split_module_prefix(full)
            if split is None:
                return None
            owner, remainder = split
            if len(remainder) == 1 and remainder[0] in owner.classes:
                return (owner.name, remainder[0])
            if remainder:
                return self._locate_class(owner.name, ".".join(remainder), _depth + 1)
        if not rest:
            for star in info.star_imports:
                found = self._locate_class(star, dotted, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- dependency graph ----------------------------------------------

    def project_deps(self, name: str) -> set[str]:
        """Indexed modules ``name`` imports (directly)."""
        info = self.modules.get(name)
        if info is None:
            return set()
        deps: set[str] = set()
        targets = (
            list(info.imports.values())
            + list(info.star_imports)
            + list(info.direct_imports)
        )
        for target in targets:
            split = self._split_module_prefix(target)
            if split is not None and split[0].name != name:
                deps.add(split[0].name)
        return deps

    def dep_closure(self, name: str) -> frozenset[str]:
        """Transitive project dependencies of ``name`` (cycle-safe)."""
        cached = self._closure_cache.get(name)
        if cached is not None:
            return cached
        closure: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            for dep in self.project_deps(current):
                if dep not in closure and dep != name:
                    closure.add(dep)
                    stack.append(dep)
        result = frozenset(closure)
        self._closure_cache[name] = result
        return result


def build_index(
    files: Iterable[tuple[str, Path]],
) -> tuple[ProjectIndex, list[str]]:
    """Index ``(module name, path)`` pairs; returns (index, parse errors)."""
    index = ProjectIndex()
    errors: list[str] = []
    for name, path in files:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
            index.add_source(
                name, source, str(path), is_package=path.stem == "__init__"
            )
        except SyntaxError as error:
            errors.append(f"{path}: {error}")
    return index, errors

"""CAMP family: campaign payload and cache-key hygiene.

The campaign's content-addressed cache assumes job payloads
canonicalise to identical JSON on every machine and every run.  These
rules keep the inputs to that digest honest.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.astutil import build_import_table, dotted_name
from repro.analysis.findings import CheckContext, Finding

_NONJSON_CALLS = frozenset({"set", "frozenset", "bytes", "bytearray", "complex"})
_NONFINITE = frozenset({"nan", "inf", "+inf", "-inf", "infinity", "+infinity", "-infinity"})


def _is_payload_builder(name: str) -> bool:
    return (
        name.startswith(config.PAYLOAD_BUILDER_PREFIXES)
        or name.endswith(config.PAYLOAD_BUILDER_SUFFIXES)
        or name in config.PAYLOAD_BUILDER_NAMES
    )


class CampVisitor(ast.NodeVisitor):
    """Emits CAMP001-CAMP003 findings for one repro.campaign file."""

    def __init__(self, context: CheckContext, tree: ast.AST):
        self.ctx = context
        self.findings: list[Finding] = []
        self.imports = build_import_table(tree)
        self._builder_depth = 0

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.ctx.active_rules:
            self.findings.append(self.ctx.make(rule, node, message))

    def _visit_function(self, node) -> None:
        is_builder = _is_payload_builder(node.name)
        if is_builder:
            self._builder_depth += 1
        self.generic_visit(node)
        if is_builder:
            self._builder_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- CAMP001: payload builders stay JSON-safe -----------------------

    def _flag_nonjson(self, node: ast.AST, what: str) -> None:
        if self._builder_depth:
            self._emit(
                "CAMP001",
                node,
                f"{what} in a payload builder; job payloads must "
                "canonicalise to JSON for stable cache keys",
            )

    def visit_Set(self, node: ast.Set) -> None:
        self._flag_nonjson(node, "set literal")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._flag_nonjson(node, "set comprehension")
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, bytes):
            self._flag_nonjson(node, "bytes literal")

    # -- calls: CAMP001 constructors, CAMP002 digests, CAMP003 dumps ----

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            if node.func.id in _NONJSON_CALLS:
                self._flag_nonjson(node, f"{node.func.id}() value")
            if node.func.id == "float" and self._is_nonfinite_literal(node):
                self._flag_nonjson(node, "non-finite float")
            if node.func.id in ("hash", "id"):
                self._emit(
                    "CAMP002",
                    node,
                    f"builtin {node.func.id}() is run-dependent "
                    "(PYTHONHASHSEED / object address); derive keys with "
                    "hashlib over canonical JSON",
                )
        name = dotted_name(node.func, self.imports)
        if name == "json.dumps" and not self._has_sort_keys(node):
            self._emit(
                "CAMP003",
                node,
                "json.dumps without sort_keys=True renders the same "
                "payload unstably; pass sort_keys=True",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_nonfinite_literal(node: ast.Call) -> bool:
        return bool(
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.strip().lower() in _NONFINITE
        )

    @staticmethod
    def _has_sort_keys(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
            if keyword.arg is None:
                return True  # **kwargs — assume the caller knows
        return False


def check(context: CheckContext, tree: ast.AST) -> list[Finding]:
    """Run the CAMP family over one parsed file."""
    visitor = CampVisitor(context, tree)
    visitor.visit(tree)
    return visitor.findings

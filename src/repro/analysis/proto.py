"""PROTO family: topology assumptions outside protocol-owned policy.

The ROADMAP's n-replica sweeps, leaderless baseline and geo-replication
scenarios all require that *nothing outside* ``repro.protocols.config``
bakes in the 3-replica topology.  These rules make the assumption
mechanically findable:

* PROTO001 — an integer literal bound to a replica-count / fault-
  threshold name (``n``, ``f``, ``quorum`` …).  A count-name field
  default on a ``*Profile``/``*Config``-style class is the sanctioned
  explicit knob and stays allowed; a literal ``f`` is always derived
  state and must come from ``repro.protocols.config.fault_tolerance``.
* PROTO002 — quorum arithmetic spelled out by hand (``f + 1``,
  ``2*f + 1``, ``len(...) // 2 + 1``, ``(n - 1) // 2``) instead of
  ``ProtocolConfig.quorum`` / ``quorum_size`` / ``fault_tolerance``.
* PROTO003 — hard-coded leader-index patterns: ``view % n`` arithmetic,
  ``replicas[0]``, ``leader == 0`` comparisons.  Leader policy belongs
  to ``ProtocolConfig.leader_of`` (and protocol classes).
* PROTO004 — a fixed-length literal list/tuple bound to a replica-list
  name in cluster/experiment/campaign configuration.
* PROTO005 — crash/partition targets bounded by an integer literal
  (``randrange(3)``, a literal index into the fault DSL); bounds must
  derive from ``len(cluster.replicas)`` or the profile's ``n``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.findings import CheckContext, Finding

#: The explicit topology knob (allowed as a config-class field default).
COUNT_NAMES = frozenset({"n", "n_replicas", "num_replicas", "replica_count"})
#: Always derived from n — a literal is always a PROTO001 finding.
DERIVED_NAMES = frozenset({"f", "quorum", "quorum_size", "majority"})
#: Class-name suffixes marking configuration carriers whose count-name
#: field defaults are the sanctioned knob.
CONFIG_CLASS_SUFFIXES = ("Profile", "Config", "Spec", "Options", "Settings")
#: Fault-DSL entry points whose replica-index arguments must not be
#: literals (the `at` timestamp comes first and is exempt).
FAULT_TARGET_METHODS = frozenset(
    {
        "crash_replica",
        "recover_replica",
        "partition_replicas",
        "heal_replicas",
        "slow_replica",
        "latency_spike",
    }
)
#: Random-draw helpers whose literal bound encodes the cluster size.
RANDOM_BOUND_FUNCS = frozenset({"randrange", "randint"})


def _int_literal(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute chain (``a.b.n`` -> n)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_count_expr(node: ast.AST) -> bool:
    """n-ish: a count name, ``.n`` attribute, or ``len(...)``."""
    name = _terminal_name(node)
    if name in COUNT_NAMES:
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
    )


def _is_f_expr(node: ast.AST) -> bool:
    return _terminal_name(node) == "f"


def _is_replicaish(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and "replica" in name


def _mentions(node: ast.AST, fragment: str) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and fragment in name:
            return True
    return False


class ProtoVisitor(ast.NodeVisitor):
    """Emits the PROTO findings for one parsed file."""

    def __init__(self, context: CheckContext):
        self.ctx = context
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.ctx.active_rules:
            self.findings.append(self.ctx.make(rule, node, message))

    # -- structure ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _in_config_class(self) -> bool:
        return bool(self._class_stack) and self._class_stack[-1].endswith(
            CONFIG_CLASS_SUFFIXES
        )

    # -- PROTO001: literal counts/thresholds ---------------------------

    def _check_name_binding(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        literal = _int_literal(value)
        if literal is None:
            return
        name = target.id
        if name in DERIVED_NAMES:
            self._emit(
                "PROTO001",
                target,
                f"`{name} = {literal}` hard-codes a derived topology "
                "quantity; compute it from the group size "
                "(repro.protocols.config.fault_tolerance / quorum_size)",
            )
        elif name in COUNT_NAMES and not self._in_config_class():
            self._emit(
                "PROTO001",
                target,
                f"`{name} = {literal}` hard-codes the replica count; "
                "thread it from ProtocolConfig/ClusterProfile (the "
                "explicit topology knob)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_name_binding(target, node.value)
        self._check_replica_list(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_name_binding(node.target, node.value)
        if node.value is not None:
            self._check_replica_list([node.target], node.value)
        self.generic_visit(node)

    # -- PROTO002: hand-rolled quorum arithmetic -----------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_quorum_arithmetic(node)
        self._check_leader_arithmetic(node)
        self.generic_visit(node)

    def _check_quorum_arithmetic(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Add):
            for side, other in ((node.left, node.right), (node.right, node.left)):
                if _int_literal(other) != 1:
                    continue
                if self._is_quorum_core(side):
                    self._emit(
                        "PROTO002",
                        node,
                        "hand-rolled quorum arithmetic; use "
                        "ProtocolConfig.quorum (or "
                        "repro.protocols.config.quorum_size)",
                    )
                    return
        elif isinstance(node.op, ast.FloorDiv) and _int_literal(node.right) == 2:
            left = node.left
            if (
                isinstance(left, ast.BinOp)
                and isinstance(left.op, ast.Sub)
                and _int_literal(left.right) == 1
                and _is_count_expr(left.left)
            ):
                self._emit(
                    "PROTO002",
                    node,
                    "hand-rolled fault-tolerance arithmetic; use "
                    "repro.protocols.config.fault_tolerance",
                )

    def _is_quorum_core(self, node: ast.AST) -> bool:
        """f | 2*f | n // 2 | len(...) // 2 — the X of quorum = X + 1."""
        if _is_f_expr(node):
            return True
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mult):
                pairs = ((node.left, node.right), (node.right, node.left))
                for lit, other in pairs:
                    if _int_literal(lit) == 2 and _is_f_expr(other):
                        return True
            if isinstance(node.op, ast.FloorDiv):
                return _int_literal(node.right) == 2 and _is_count_expr(node.left)
        return False

    # -- PROTO003: hard-coded leader index -----------------------------

    def _check_leader_arithmetic(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, ast.Mod):
            return
        right_is_size = _is_count_expr(node.right) or (
            isinstance(node.right, ast.Call)
            and isinstance(node.right.func, ast.Name)
            and node.right.func.id == "len"
        )
        if right_is_size and _mentions(node.left, "view"):
            self._emit(
                "PROTO003",
                node,
                "leader-index arithmetic (`view % n`) outside protocol-"
                "owned policy; use ProtocolConfig.leader_of(view)",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _is_replicaish(node.value) and _int_literal(node.slice) == 0:
            self._emit(
                "PROTO003",
                node,
                "`replicas[0]` assumes replica 0 is special; resolve the "
                "leader through ProtocolConfig.leader_of / cluster roles",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            sides = (node.left, node.comparators[0])
            for side, other in (sides, sides[::-1]):
                name = _terminal_name(side)
                if name is not None and "leader" in name and _int_literal(other) == 0:
                    self._emit(
                        "PROTO003",
                        node,
                        f"comparing `{name}` against literal 0 hard-codes "
                        "the initial leader; derive it from "
                        "ProtocolConfig.leader_of(view)",
                    )
                    break
        self.generic_visit(node)

    # -- PROTO004: fixed-length replica lists --------------------------

    def _check_replica_list(self, targets: list, value: ast.AST) -> None:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return
        if len(value.elts) < 2 or not all(
            isinstance(e, ast.Constant) for e in value.elts
        ):
            return
        for target in targets:
            if _is_replicaish(target) or _terminal_name(target) in (
                "placement",
                "members",
                "peers",
            ):
                self._emit(
                    "PROTO004",
                    value,
                    f"fixed {len(value.elts)}-element replica list literal; "
                    "build it from range(config.n) so the topology scales",
                )
                return

    def visit_keyword(self, node: ast.keyword) -> None:
        # PROTO001 for call keywords: build_config(..., n=3) / f=1.
        if node.arg in COUNT_NAMES | DERIVED_NAMES:
            literal = _int_literal(node.value)
            if literal is not None:
                self._emit(
                    "PROTO001",
                    node.value,
                    f"`{node.arg}={literal}` passes a literal topology "
                    "parameter; thread it from ProtocolConfig/"
                    "ClusterProfile",
                )
        if node.arg is not None and (
            "replica" in node.arg or node.arg in ("placement", "members", "peers")
        ):
            self._check_replica_list([ast.Name(id=node.arg)], node.value)
        self.generic_visit(node)

    # -- PROTO005: literal-bounded fault targets -----------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name in RANDOM_BOUND_FUNCS and node.args:
            bounds = [_int_literal(arg) for arg in node.args]
            concrete = [b for b in bounds if b is not None]
            if concrete and max(concrete) >= 2:
                self._emit(
                    "PROTO005",
                    node,
                    f"`{name}()` draws a replica-sized value from a "
                    "literal bound; derive the bound from "
                    "len(cluster.replicas) (or profile.n)",
                )
        elif name in FAULT_TARGET_METHODS:
            # First positional argument is the `at` timestamp.
            for arg in node.args[1:]:
                if _int_literal(arg) is not None:
                    self._emit(
                        "PROTO005",
                        arg,
                        f"literal replica index passed to `{name}()`; "
                        "use role targets ('leader'/'follower') or an "
                        "index derived from the cluster size",
                    )
                    break
        self.generic_visit(node)


def check(context: CheckContext, tree: ast.AST) -> list[Finding]:
    """Run the PROTO family over one parsed file."""
    visitor = ProtoVisitor(context)
    visitor.visit(tree)
    return visitor.findings

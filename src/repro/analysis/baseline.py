"""The committed baseline of grandfathered findings.

``tools/detlint_baseline.json`` holds the findings the team has looked
at and decided to keep, each with a justification.  Entries match on
``(rule, module, context)`` where *context* is the stripped source line
— stable under line-number drift, invalidated the moment the flagged
code actually changes.

Regenerate after intentional changes with::

    repro-experiments lint --update-baseline

which preserves the reasons of entries that still match and stamps new
ones with a placeholder the gate (``--check``) refuses, so a fresh
suppression cannot land without a human-written justification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Reason stamped on entries --update-baseline could not carry over.
PLACEHOLDER_REASON = "TODO: justify this suppression"


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing fields)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One justified suppression."""

    rule: str
    module: str
    context: str  # stripped source line of the finding
    reason: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.module, self.context)

    def to_jsonable(self) -> dict:
        return {
            "rule": self.rule,
            "module": self.module,
            "context": self.context,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """The suppression set, with match bookkeeping for staleness."""

    entries: list[BaselineEntry] = field(default_factory=list)
    path: Optional[Path] = None
    _matched: set[tuple[str, str, str]] = field(default_factory=set)

    def match(self, finding: Finding) -> Optional[BaselineEntry]:
        """The entry suppressing ``finding``, if any (marks it used)."""
        key = (finding.rule, finding.module, finding.source_line)
        for entry in self.entries:
            if entry.key() == key:
                self._matched.add(key)
                return entry
        return None

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched nothing in the last lint run."""
        return [e for e in self.entries if e.key() not in self._matched]

    def unjustified_entries(self) -> list[BaselineEntry]:
        """Entries without a real reason string (placeholder or empty)."""
        return [
            e
            for e in self.entries
            if not e.reason.strip() or e.reason.strip() == PLACEHOLDER_REASON
        ]


def load_baseline(path: Optional[Path]) -> Baseline:
    """Load ``path``; a missing file is an empty baseline."""
    if path is None:
        return Baseline()
    path = Path(path)
    if not path.exists():
        return Baseline(path=path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(data, dict) or "suppressions" not in data:
        raise BaselineError(f"{path}: expected an object with a 'suppressions' list")
    entries = []
    for index, raw in enumerate(data["suppressions"]):
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    module=raw["module"],
                    context=raw["context"],
                    reason=raw.get("reason", ""),
                )
            )
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"{path}: suppression #{index} is missing a field ({error})"
            ) from error
    return Baseline(entries=entries, path=path)


def write_baseline(path: Path, baseline: Baseline) -> Path:
    """Write ``baseline`` to ``path`` (sorted, stable rendering)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": [
            entry.to_jsonable()
            for entry in sorted(baseline.entries, key=BaselineEntry.key)
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def regenerate(previous: Baseline, findings: Iterable[Finding]) -> Baseline:
    """A fresh baseline covering ``findings``, keeping known reasons.

    ``findings`` should be the *unsuppressed-by-pragma* findings of a
    lint run: pragma'd sites stay suppressed at the source, baseline
    entries exist only for what would otherwise fail the gate.
    """
    known = {entry.key(): entry.reason for entry in previous.entries}
    entries: dict[tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        key = (finding.rule, finding.module, finding.source_line)
        if key in entries:
            continue
        entries[key] = BaselineEntry(
            rule=finding.rule,
            module=finding.module,
            context=finding.source_line,
            reason=known.get(key, PLACEHOLDER_REASON),
        )
    return Baseline(entries=list(entries.values()), path=previous.path)

"""Cross-module, interprocedural observer-purity analysis (OBS005).

The v1 walk in :mod:`repro.analysis.purity` is function-local: it flags
an observer that mutates a simulation object *directly*, but an
observer that hands the object to a helper — possibly in another
module, possibly two calls deep — walks straight past it.  This pass
closes that hole:

1. For every function in the :class:`~repro.analysis.index.ProjectIndex`
   compute a *purity summary*: which of its parameters it mutates
   (attribute/item writes, deletes, known-mutating method calls), with
   parameter-to-parameter taint inside the body (``x = param`` then
   ``x.field = 1`` counts).
2. Propagate summaries over the call graph to a fixpoint: if ``f``
   passes parameter ``p`` into ``g`` where ``g`` mutates it, then ``f``
   mutates ``p`` too.  The propagation is monotone over a finite
   lattice, so cycles in the call graph are safe.
3. At every call site inside ``repro.obs``, check each argument that is
   sim-rooted (same rooting rules as v1: parameters, names derived from
   them, ``self.<attr>`` for ``config.OBS_SIM_SELF_ATTRS``) against the
   callee's summary, and emit **OBS005** with the full mutation chain
   when the callee (transitively) mutates it.

Writes to the sanctioned hook attributes (``config.OBS_HOOK_ATTRS``)
are not mutations, mirroring OBS001.  Limitations (by design, to stay
quiet): mutation through return values, ``*args``/``**kwargs``
forwarding and dynamically-dispatched receivers are not tracked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import config, purity
from repro.analysis.astutil import root_of
from repro.analysis.findings import CheckContext, Finding
from repro.analysis.index import FunctionInfo, ProjectIndex, _dotted_expr


@dataclass(frozen=True)
class Mutation:
    """Why a function is considered to mutate one of its parameters."""

    param: str
    detail: str  # human phrase: "assigns attribute `x`" etc.
    via: tuple[str, ...] = ()  # call chain (callee fqns), direct = ()

    def chain_text(self) -> str:
        if not self.via:
            return self.detail
        return " -> ".join(self.via) + f", which {self.detail}"


@dataclass
class CallSite:
    """One resolved call: where it happens and how arguments bind."""

    node: ast.Call
    callee: FunctionInfo
    #: (callee parameter name, argument expression) pairs.
    bindings: list[tuple[str, ast.AST]] = field(default_factory=list)


@dataclass
class FunctionFacts:
    """Local (intraprocedural) facts about one function."""

    info: FunctionInfo
    #: local name -> parameters it (transitively) derives from.
    taint: dict[str, frozenset[str]] = field(default_factory=dict)
    #: param -> first Mutation discovered (direct ones installed here).
    mutations: dict[str, Mutation] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)


_LOCAL_VALUE_TYPES = purity._LOCAL_VALUE_TYPES


def _param_roots(facts: FunctionFacts, node: ast.AST) -> frozenset[str]:
    """Which parameters the expression ``node`` derives from."""
    root = root_of(node)
    if root is None:
        return frozenset()
    kind, name = root
    if kind == "self_attr":
        # self.anything derives from self: mutating it mutates the
        # receiver the caller handed in.
        return facts.taint.get("self", frozenset())
    return facts.taint.get(name, frozenset())


def _collect_taint(facts: FunctionFacts, func: ast.AST) -> None:
    """Two passes: (1) every param maps to itself, (2) follow bindings."""
    for param in facts.info.params:
        facts.taint[param] = frozenset({param})
    # One forward sweep is enough for the assignment styles this
    # codebase uses; a name rebound to a local value drops its taint.
    for node in ast.walk(func):
        targets: list[tuple[ast.AST, ast.AST]] = []
        if isinstance(node, ast.Assign):
            targets = [(t, node.value) for t in node.targets]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [(node.target, node.value)]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            roots = _param_roots(facts, node.iter)
            if roots:
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        facts.taint[name_node.id] = roots
            continue
        for target, value in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, _LOCAL_VALUE_TYPES):
                facts.taint.pop(target.id, None)
            else:
                roots = _param_roots(facts, value)
                if roots:
                    facts.taint[target.id] = roots


def _record_mutation(facts: FunctionFacts, node: ast.AST, detail: str) -> None:
    for param in sorted(_param_roots(facts, node)):
        facts.mutations.setdefault(param, Mutation(param=param, detail=detail))


def _collect_mutations(facts: FunctionFacts, func: ast.AST) -> None:
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    if target.attr in config.OBS_HOOK_ATTRS:
                        continue
                    _record_mutation(
                        facts, target.value, f"assigns attribute `{target.attr}`"
                    )
                elif isinstance(target, ast.Subscript):
                    _record_mutation(facts, target.value, "assigns an item")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    _record_mutation(facts, target.value, "deletes from it")
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (
                isinstance(func_node, ast.Attribute)
                and func_node.attr in config.MUTATING_METHODS
            ):
                _record_mutation(
                    facts, func_node.value, f"calls mutating `.{func_node.attr}()`"
                )


def _resolve_call(
    index: ProjectIndex, module: str, enclosing_class: Optional[str], node: ast.Call
) -> Optional[FunctionInfo]:
    """Resolve the callee of a call node, or None."""
    func = node.func
    if isinstance(func, ast.Name):
        return index.resolve_function(module, func.id)
    if isinstance(func, ast.Attribute):
        # self.helper(...) -> method of the enclosing class (with bases).
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and enclosing_class is not None
        ):
            methods = index.resolve_class_methods(module, enclosing_class)
            return methods.get(func.attr)
        dotted = _dotted_expr(func)
        if dotted is not None:
            return index.resolve_function(module, dotted)
    return None


def _bind_arguments(callee: FunctionInfo, node: ast.Call) -> list[tuple[str, ast.AST]]:
    """Map call arguments onto callee parameter names (conservative)."""
    params = callee.params
    positional = params
    offset = 0
    is_method = "." in callee.qualname
    receiver_self = is_method and params[:1] in (["self"], ["cls"])
    if receiver_self and isinstance(node.func, ast.Attribute):
        # obj.m(a) binds a to the parameter after self.
        offset = 1
    bindings: list[tuple[str, ast.AST]] = []
    if receiver_self and isinstance(node.func, ast.Attribute):
        bindings.append((params[0], node.func.value))
    for position, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred):
            continue
        slot = position + offset
        if slot < len(positional):
            bindings.append((positional[slot], arg))
    for keyword in node.keywords:
        if keyword.arg is not None and keyword.arg in params:
            bindings.append((keyword.arg, keyword.value))
    return bindings


def _collect_calls(
    index: ProjectIndex,
    facts: FunctionFacts,
    func: ast.AST,
    enclosing_class: Optional[str],
) -> None:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = _resolve_call(index, facts.info.module, enclosing_class, node)
        if callee is None or callee.key == facts.info.key:
            continue
        facts.calls.append(
            CallSite(node=node, callee=callee, bindings=_bind_arguments(callee, node))
        )


def compute_facts(index: ProjectIndex) -> dict[tuple[str, str], FunctionFacts]:
    """Local facts for every indexed function."""
    all_facts: dict[tuple[str, str], FunctionFacts] = {}
    for info in index.all_functions():
        facts = FunctionFacts(info=info)
        _collect_taint(facts, info.node)
        _collect_mutations(facts, info.node)
        enclosing = info.qualname.split(".")[0] if "." in info.qualname else None
        _collect_calls(index, facts, info.node, enclosing)
        all_facts[info.key] = facts
    return all_facts


def propagate_summaries(
    all_facts: dict[tuple[str, str], FunctionFacts],
) -> dict[tuple[str, str], dict[str, Mutation]]:
    """Fixpoint: callers inherit callee parameter mutations."""
    summaries = {key: dict(facts.mutations) for key, facts in all_facts.items()}
    changed = True
    while changed:
        changed = False
        for key, facts in all_facts.items():
            mine = summaries[key]
            for call in facts.calls:
                callee_summary = summaries.get(call.callee.key)
                if not callee_summary:
                    continue
                for callee_param, arg in call.bindings:
                    mutation = callee_summary.get(callee_param)
                    if mutation is None:
                        continue
                    for param in sorted(_param_roots(facts, arg)):
                        if param in mine:
                            continue
                        mine[param] = Mutation(
                            param=param,
                            detail=mutation.detail,
                            via=(call.callee.fqn,) + mutation.via,
                        )
                        changed = True
    return summaries


def check_module(
    context: CheckContext,
    index: ProjectIndex,
    all_facts: dict[tuple[str, str], FunctionFacts],
    summaries: dict[tuple[str, str], dict[str, Mutation]],
) -> list[Finding]:
    """OBS005 findings for one (obs-scoped) module."""
    findings: list[Finding] = []
    if "OBS005" not in context.active_rules:
        return findings
    for info in index.functions_of(context.module):
        facts = all_facts.get(info.key)
        if facts is None:
            continue
        # Sim-rootedness uses the v1 scope rules so v1 and v2 agree on
        # what counts as simulation state.
        scope = purity._Scope(info.params)
        purity._collect_bindings(scope, info.node)
        for call in facts.calls:
            callee_summary = summaries.get(call.callee.key, {})
            if not callee_summary:
                continue
            reported: set[str] = set()
            for callee_param, arg in call.bindings:
                mutation = callee_summary.get(callee_param)
                if mutation is None or callee_param in reported:
                    continue
                if not scope.is_sim_rooted(arg):
                    continue
                reported.add(callee_param)
                try:
                    arg_text = ast.unparse(arg)
                except Exception:
                    arg_text = "a simulation object"
                findings.append(
                    context.make(
                        "OBS005",
                        call.node,
                        f"observer passes `{arg_text}` to "
                        f"{call.callee.fqn}(), which "
                        f"{mutation.chain_text()} — simulation state must "
                        "not be mutated through any call chain",
                    )
                )
    return findings


def analyse(
    index: ProjectIndex,
) -> tuple[
    dict[tuple[str, str], FunctionFacts],
    dict[tuple[str, str], dict[str, Mutation]],
]:
    """Convenience: facts + propagated summaries for a whole index."""
    facts = compute_facts(index)
    return facts, propagate_summaries(facts)

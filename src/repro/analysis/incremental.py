"""The incremental lint cache: re-analyse only what could have changed.

Same content-addressing idiom as the campaign result cache
(:mod:`repro.campaign.cache`): identities are sha256 hashes over exactly
the bytes that determine the result, a schema/fingerprint version keys
the whole store, and a corrupt file is silently treated as empty (the
cache is an accelerator, never a source of truth).

A module's findings are a function of

* the engine itself — :func:`engine_fingerprint` covers the analysis
  schema version, the rule catalog and the rule scopes, so changing any
  rule invalidates everything;
* its own source — the module content hash;
* every project module in its import-dependency closure — the
  cross-module passes (OBS005) read callee summaries, and callees are
  only reachable through imports, so the closure's content hashes are
  the complete read set.

A warm run over an unchanged tree therefore re-analyses **0 modules**;
editing one module re-analyses exactly that module and its dependents.
Only raw (pre-suppression) findings are cached: pragmas and the
baseline are re-applied on every run, so editing a suppression never
requires invalidation.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.analysis import config
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES

#: Bump when the analysis logic changes in a way hashes cannot see.
ANALYSIS_SCHEMA_VERSION = 2

CACHE_FILE = "detlint-cache.json"


def engine_fingerprint() -> str:
    """Identity of the analysis configuration (rules + scopes + version)."""
    payload = {
        "schema": ANALYSIS_SCHEMA_VERSION,
        "rules": sorted(RULES),
        "scopes": {
            rule: [sorted(include), sorted(exclude)]
            for rule, (include, exclude) in config.RULE_SCOPES.items()
        },
        "mutating_methods": sorted(config.MUTATING_METHODS),
        "sim_self_attrs": sorted(config.OBS_SIM_SELF_ATTRS),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _finding_to_raw(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "module": finding.module,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "source_line": finding.source_line,
    }


def _finding_from_raw(raw: dict) -> Finding:
    return Finding(
        rule=raw["rule"],
        module=raw["module"],
        path=raw["path"],
        line=raw["line"],
        col=raw["col"],
        message=raw["message"],
        source_line=raw.get("source_line", ""),
    )


class LintCache:
    """One JSON store of per-module findings keyed by closure hashes."""

    def __init__(self, cache_dir: Path):
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / CACHE_FILE
        self.fingerprint = engine_fingerprint()
        self._modules: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # corrupt cache == empty cache
        if (
            not isinstance(data, dict)
            or data.get("fingerprint") != self.fingerprint
        ):
            return  # engine changed: every entry is void
        modules = data.get("modules")
        if isinstance(modules, dict):
            self._modules = modules

    def lookup(
        self, module: str, closure_hashes: dict[str, str]
    ) -> Optional[list[Finding]]:
        """Cached raw findings if nothing in the read set changed."""
        entry = self._modules.get(module)
        if entry is None or entry.get("closure") != closure_hashes:
            return None
        return [_finding_from_raw(raw) for raw in entry.get("findings", [])]

    def store(
        self,
        module: str,
        closure_hashes: dict[str, str],
        findings: list[Finding],
    ) -> None:
        self._modules[module] = {
            "closure": closure_hashes,
            "findings": [_finding_to_raw(f) for f in findings],
        }
        self._dirty = True

    def drop_missing(self, present: set[str]) -> None:
        """Forget modules that no longer exist in the tree."""
        gone = [name for name in self._modules if name not in present]
        for name in gone:
            del self._modules[name]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": self.fingerprint,
            "modules": self._modules,
        }
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        self._dirty = False

"""detlint command line: ``python -m repro.analysis`` / ``repro-experiments lint``.

Exit codes: 0 clean (or informational run), 1 gate failure under
``--check`` (active findings, stale or unjustified baseline entries,
parse errors), 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    regenerate,
    write_baseline,
)
from repro.analysis.engine import lint_paths
from repro.analysis.incremental import LintCache
from repro.analysis.reporters import render_json, render_rule_catalog, render_text
from repro.analysis.rules import RULES

DEFAULT_BASELINE = Path("tools") / "detlint_baseline.json"
DEFAULT_CACHE_DIR = Path(".detlint-cache")


def default_paths() -> list[Path]:
    """The installed ``repro`` package — works from any cwd."""
    import repro

    return [Path(repro.__file__).parent]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments lint",
        description="detlint: determinism & purity static analysis (see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate mode: exit 1 on any active finding or baseline problem",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline suppression file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings, keeping "
        "known reasons; new entries get a placeholder --check refuses",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="only run this rule (repeatable)",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="enable the incremental cache (content-hash keyed; a warm "
        "run over an unchanged tree re-analyses 0 modules)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="incremental mode shorthand: use the cache at "
        f"{DEFAULT_CACHE_DIR} (unless --cache-dir says otherwise) and "
        "list the modules that were re-analysed",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 log (GitHub code scanning)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the JSON report to PATH ('-' or no value: stdout)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list suppressed findings"
    )
    args = parser.parse_args(argv)

    if args.rules:
        print(render_rule_catalog())
        return 0

    rules_filter = None
    if args.rule:
        rules_filter = {rule_id.upper() for rule_id in args.rule}
        unknown = rules_filter - set(RULES)
        if unknown:
            print(f"detlint: unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return 2

    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as error:
        print(f"detlint: {error}", file=sys.stderr)
        return 2

    paths = args.paths or default_paths()
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"detlint: no such path(s): {missing}", file=sys.stderr)
        return 2

    cache = None
    if args.cache_dir is not None or args.changed:
        cache = LintCache(args.cache_dir or DEFAULT_CACHE_DIR)

    report = lint_paths(
        paths, baseline=baseline, rules_filter=rules_filter, cache=cache
    )

    if args.update_baseline:
        # Regenerate from everything not suppressed at the source:
        # findings the old baseline covered keep their entries (and
        # reasons); entries matching nothing are dropped as resolved.
        keep = [f for f in report.findings if f.suppressed_by != "pragma"]
        fresh = regenerate(baseline, keep)
        resolved = [
            entry
            for entry in baseline.entries
            if entry.key() not in {e.key() for e in fresh.entries}
        ]
        path = write_baseline(args.baseline, fresh)
        for entry in sorted(resolved, key=lambda e: e.key()):
            print(
                f"detlint: resolved: {entry.rule} in {entry.module} "
                f"({entry.context!r}) no longer fires — entry dropped",
                file=sys.stderr,
            )
        placeholders = len(fresh.unjustified_entries())
        print(
            f"detlint: baseline rewritten to {path} "
            f"({len(fresh.entries)} entr(y/ies), {len(resolved)} resolved, "
            f"{placeholders} needing a reason)",
            file=sys.stderr,
        )
        return 0

    if args.sarif is not None:
        from repro.analysis.sarif import write_sarif

        write_sarif(args.sarif, report)
        print(f"detlint: SARIF log written to {args.sarif}", file=sys.stderr)

    if args.json is not None:
        rendered = json.dumps(render_json(report), indent=2, sort_keys=True)
        if args.json == "-":
            print(rendered)
        else:
            Path(args.json).parent.mkdir(parents=True, exist_ok=True)
            Path(args.json).write_text(rendered + "\n", encoding="utf-8")
            print(f"detlint: JSON report written to {args.json}", file=sys.stderr)
    if args.json != "-":
        print(render_text(report, verbose=args.verbose))

    gate_ok = (
        report.ok
        and not report.baseline.stale_entries()
        and not report.baseline.unjustified_entries()
    )
    if args.check and not gate_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

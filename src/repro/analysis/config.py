"""Per-module rule configuration.

Which rules apply where is a property of the architecture, not of the
individual finding, so it lives here rather than in suppressions:

* The DET family guards the *simulation core* — everything that runs
  inside (or feeds) the event loop.  ``repro.cli`` and
  ``repro.campaign`` legitimately read the wall clock (progress
  timings on stderr) and are excluded from DET001.
* The OBS purity rules apply to ``repro.obs`` itself; the
  inverse-dependency rule OBS003 applies to the simulation core.
  ``repro.cluster`` is the sanctioned composition layer (it *builds*
  hubs for observed runs), so it is exempt from OBS003.
* The CAMP family applies to ``repro.campaign`` only.

A rule applies to a module when the module matches one of the rule's
include prefixes and none of its exclude prefixes.  Prefixes match
whole dotted segments (``repro.net`` matches ``repro.net.network`` but
not ``repro.network``).
"""

from __future__ import annotations

#: Everything that runs under the event loop and must be seeded-replayable.
SIM_CORE = (
    "repro.sim",
    "repro.net",
    "repro.protocols",
    "repro.cluster",
    "repro.core",
    "repro.app",
    "repro.workload",
    "repro.resilience",
    "repro.population",
)

#: Modules allowed to read os.environ (DET004): the CLI boundary and the
#: single experiment-settings accessor.
ENV_READ_ALLOWED = (
    "repro.cli",
    "repro.experiments.settings",
)

#: Composition/configuration layers where topology must stay abstract
#: (the PROTO family); protocol-owned policy lives outside this scope.
TOPOLOGY_SCOPE = (
    "repro.cluster",
    "repro.experiments",
    "repro.population",
    "repro.workload",
    "repro.campaign",
    "repro.app",
    "tools",
)

#: rule id -> (include prefixes, exclude prefixes).
RULE_SCOPES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    # Wall clock: the sim core plus repro.obs (observers must timestamp
    # with sim time only).  The CLI and campaign engine measure wall
    # time on purpose (stderr-only content).
    "DET001": (SIM_CORE + ("repro.obs", "repro.experiments"), ()),
    "DET002": (("repro", "tools"), ()),
    "DET003": (("repro", "tools"), ()),
    "DET004": (("repro", "tools"), ENV_READ_ALLOWED),
    # Hash-order-sensitive iteration matters where messages are
    # dispatched, ties broken and quorums counted.
    "DET005": (
        (
            "repro.sim",
            "repro.net",
            "repro.protocols",
            "repro.cluster",
            "repro.core",
            "repro.resilience",
            "repro.population",
            "repro.workload",
            "tools",
        ),
        (),
    ),
    "DET006": (("repro", "tools"), ()),
    "OBS001": (("repro.obs",), ()),
    "OBS002": (("repro.obs",), ()),
    "OBS003": (SIM_CORE, ("repro.cluster",)),
    "OBS004": (("repro.obs",), ()),
    "OBS005": (("repro.obs",), ()),
    "CAMP001": (("repro.campaign",), ()),
    "CAMP002": (("repro.campaign",), ()),
    "CAMP003": (("repro.campaign",), ()),
    # Topology assumptions: the composition/configuration layers must
    # not bake in the 3-replica topology.  Protocol-owned policy
    # (repro.protocols, repro.core) legitimately implements quorum and
    # leader arithmetic — except that quorum sizes inside protocols
    # still route through ProtocolConfig (PROTO002 includes them, with
    # repro.protocols.config itself as the single sanctioned owner).
    "PROTO001": (TOPOLOGY_SCOPE, ()),
    "PROTO002": (
        TOPOLOGY_SCOPE + ("repro.protocols", "repro.core"),
        ("repro.protocols.config",),
    ),
    "PROTO003": (TOPOLOGY_SCOPE, ()),
    "PROTO004": (TOPOLOGY_SCOPE, ()),
    "PROTO005": (TOPOLOGY_SCOPE, ()),
    # Hot-path hygiene: only where the dispatch/send loops live.  The
    # rest of the tree is free to prefer clarity over loop-hoisting.
    # repro.campaign.shard merges per-shard sample streams in tight
    # loops, so it opts into the hot-callable rule too.
    "PERF001": (("repro.sim", "repro.net", "repro.campaign.shard"), ()),
    # Allocation-free dispatch is a repro.sim-only contract (the array
    # core's free-list pool); elsewhere a constructor in a loop is fine.
    "PERF002": (("repro.sim",), ()),
}

#: Attributes the observability layer is allowed to assign on simulation
#: objects — the hook API (see repro.obs.hub.ObservabilityHub.attach).
OBS_HOOK_ATTRS = frozenset({"obs", "observability"})

#: Self-attributes of observer classes that hold simulation objects
#: (set in their constructors); anything reached through them is
#: treated as simulation state by OBS001/OBS002.
OBS_SIM_SELF_ATTRS = frozenset(
    {"replica", "client", "cluster", "node_obj", "loop", "network", "processor"}
)

#: Method names that mutate their receiver.  Deliberately conservative:
#: generic read-ish verbs observers use on their *own* objects (emit,
#: inc, observe, record) are not listed.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "attach",
        "call_after",
        "call_at",
        "cancel",
        "charge",
        "clear",
        "crash",
        "deliver",
        "detach",
        "discard",
        "extend",
        "halt",
        "insert",
        "multicast",
        "multicast_peers",
        "pop",
        "popleft",
        "push",
        "recover",
        "remove",
        "restart",
        "reverse",
        "run_until",
        "schedule",
        "send",
        "setdefault",
        "sort",
        "start",
        "step",
        "stop",
        "update",
    }
)

#: Aggregations whose result does not depend on iteration order; a set
#: consumed directly by one of these is not a DET005 hazard.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset", "bool"}
)

#: Function-name patterns that mark campaign payload builders (CAMP001).
PAYLOAD_BUILDER_PREFIXES = ("plan_",)
PAYLOAD_BUILDER_SUFFIXES = ("_to_payload",)
PAYLOAD_BUILDER_NAMES = frozenset({"settings", "sim_job", "cell_job", "job_key"})


def _matches_prefix(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def rule_applies(rule_id: str, module: str) -> bool:
    """Whether ``rule_id`` is in force for dotted ``module``."""
    include, exclude = RULE_SCOPES[rule_id]
    if not any(_matches_prefix(module, prefix) for prefix in include):
        return False
    return not any(_matches_prefix(module, prefix) for prefix in exclude)


def rules_for_module(module: str) -> set[str]:
    """All rule ids in force for dotted ``module``."""
    return {rule_id for rule_id in RULE_SCOPES if rule_applies(rule_id, module)}

"""SARIF 2.1.0 output for GitHub code scanning.

One run, one ``detlint`` driver, one rule entry per catalog rule, one
result per finding.  Artifact URIs are repo-relative with forward
slashes (what ``github/codeql-action/upload-sarif`` expects from a
checkout-rooted run).  Suppressed findings are still emitted, marked
with a SARIF ``suppressions`` entry (``inSource`` for pragmas,
``external`` for the committed baseline), so code scanning shows them
as suppressed instead of resurrecting them as new alerts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.engine import LintReport
from repro.analysis.rules import RULES, rule_ids

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
DOCS_URI = "https://github.com/anonymous/repro/blob/main/docs/ANALYSIS.md"


def _relative_uri(path: str) -> str:
    """Repo-relative forward-slash URI for a finding path."""
    p = Path(path)
    try:
        p = p.relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.title.title().replace(" ", "").replace("/", "").replace("-", ""),
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "helpUri": f"{DOCS_URI}#{rule.family.lower()}-family",
        "defaultConfiguration": {"level": "error"},
        "properties": {"family": rule.family},
    }


def render_sarif(report: LintReport) -> dict[str, Any]:
    """The report as a SARIF 2.1.0 log object."""
    catalog = rule_ids()
    rule_index = {rule_id: position for position, rule_id in enumerate(catalog)}
    results: list[dict[str, Any]] = []
    for finding in report.findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _relative_uri(finding.path)},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    },
                    "logicalLocations": [
                        {"fullyQualifiedName": finding.module, "kind": "module"}
                    ],
                }
            ],
            "partialFingerprints": {
                # The baseline's matching context: stable across
                # line-number drift, changes with the flagged code.
                "detlint/v1": f"{finding.rule}:{finding.module}:{finding.source_line}",
            },
        }
        if finding.suppressed_by is not None:
            kind = "inSource" if finding.suppressed_by == "pragma" else "external"
            suppression: dict[str, Any] = {"kind": kind}
            if finding.suppression_reason:
                suppression["justification"] = finding.suppression_reason
            result["suppressions"] = [suppression]
        results.append(result)
    for error in report.parse_errors:
        results.append(
            {
                "ruleId": "PARSE",
                "level": "error",
                "message": {"text": f"parse error: {error}"},
            }
        )
    tool_rules = [_rule_descriptor(rule_id) for rule_id in catalog]
    if report.parse_errors:
        tool_rules.append(
            {
                "id": "PARSE",
                "name": "ParseError",
                "shortDescription": {"text": "file failed to parse"},
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "detlint",
                        "informationUri": DOCS_URI,
                        "version": "2.0.0",
                        "rules": tool_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def write_sarif(path: Path, report: LintReport) -> Path:
    """Render and write the SARIF log; returns the path written."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(render_sarif(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path

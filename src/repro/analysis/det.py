"""DET family: determinism hazards in the simulation core.

One AST pass per file covers all six rules; the engine filters by the
per-module scope config before the visitor runs, so ``active_rules``
only ever contains rules in force for this module.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import (
    annotation_is_set,
    build_import_table,
    dotted_name,
)
from repro.analysis.findings import CheckContext, Finding

WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid3",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: Module-level random functions that consume the hidden global state.
#: ``random.Random`` (an explicitly seeded instance) is deliberately
#: absent.
GLOBAL_RANDOM_CALLS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

ENVIRON_MUTATORS = frozenset({"update", "setdefault", "pop", "popitem", "clear"})

_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset", "bool"}
)

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _collect_set_names(tree: ast.AST) -> tuple[set[str], set[str]]:
    """Names known to hold sets: ``(plain names, self-attributes)``.

    Collected module-wide: an attribute annotated ``set[...]`` in one
    method is treated as a set wherever the class touches it.  This is
    a lint heuristic, not a type checker — a reused name can in
    principle misfire, and the pragma exists for that case.
    """
    names: set[str] = set()
    self_attrs: set[str] = set()

    def note(target: ast.AST, is_set: bool) -> None:
        if not is_set:
            return
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                self_attrs.add(target.attr)

    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            note(node.target, annotation_is_set(node.annotation))
        elif isinstance(node, ast.Assign):
            is_set = _is_set_literal(node.value)
            for target in node.targets:
                note(target, is_set)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None and annotation_is_set(arg.annotation):
                    names.add(arg.arg)
    return names, self_attrs


def _is_set_literal(node: ast.AST) -> bool:
    """A set constructed right here (literal, comprehension, call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


class DetVisitor(ast.NodeVisitor):
    """Emits DET001-DET006 findings into ``context``."""

    def __init__(self, context: CheckContext, tree: ast.AST):
        self.ctx = context
        self.findings: list[Finding] = []
        self.imports = build_import_table(tree)
        self.set_names, self.set_self_attrs = _collect_set_names(tree)
        # Nodes a surrounding order-insensitive call has exempted from
        # DET005 (e.g. the generator inside ``sorted(x for x in s)``).
        self._det5_exempt: set[int] = set()

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.ctx.active_rules:
            self.findings.append(self.ctx.make(rule, node, message))

    # -- sets (DET005) --------------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if _is_set_literal(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.set_self_attrs
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _describe_set(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:
            return "a set"

    def _check_iteration(self, iter_node: ast.AST, anchor: ast.AST) -> None:
        if id(iter_node) in self._det5_exempt:
            return
        if self._is_set_expr(iter_node):
            self._emit(
                "DET005",
                anchor,
                f"iteration over set `{self._describe_set(iter_node)}` is "
                "hash-order dependent; iterate sorted(...) with an explicit key",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- calls (most rules) ---------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func, self.imports)
        if name is not None:
            self._check_call_name(name, node)
        if isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple") and node.args:
                self._check_iteration(node.args[0], node)
            if node.func.id in _ORDER_INSENSITIVE:
                for arg in node.args:
                    self._det5_exempt.add(id(arg))
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                        for generator in arg.generators:
                            self._det5_exempt.add(id(generator.iter))
        self.generic_visit(node)

    def _check_call_name(self, name: str, node: ast.Call) -> None:
        if name in WALLCLOCK_CALLS:
            self._emit(
                "DET001",
                node,
                f"wall-clock call {name}() in simulation code; use the "
                "event loop's virtual time (loop.now)",
            )
        if name in ENTROPY_CALLS or name.startswith("secrets."):
            self._emit(
                "DET002",
                node,
                f"{name}() draws ambient entropy no seed controls; use a "
                "seeded stream from repro.sim.rng.RngRegistry",
            )
        if name.startswith("random.") and name.split(".", 1)[1] in GLOBAL_RANDOM_CALLS:
            self._emit(
                "DET003",
                node,
                f"{name}() consumes the global random state; draw from a "
                "named RngRegistry stream instead",
            )
        if name == "os.getenv" or name == "os.environ.get":
            self._emit(
                "DET004",
                node,
                "environment read outside config/CLI; route it through "
                "repro.experiments.settings",
            )
        if name == "os.putenv" or name == "os.unsetenv":
            self._emit("DET006", node, f"{name}() mutates the process environment")
        if name.startswith("os.environ.") and name.rsplit(".", 1)[1] in ENVIRON_MUTATORS:
            self._emit("DET006", node, f"{name}() mutates the process environment")

    # -- os.environ subscripts and membership ---------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        name = dotted_name(node.value, self.imports)
        if name == "os.environ":
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self._emit(
                    "DET006", node, "os.environ assignment mutates the process environment"
                )
            else:
                self._emit(
                    "DET004",
                    node,
                    "environment read outside config/CLI; route it through "
                    "repro.experiments.settings",
                )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)):
                if dotted_name(comparator, self.imports) == "os.environ":
                    self._emit(
                        "DET004",
                        node,
                        "environment membership test outside config/CLI; "
                        "route it through repro.experiments.settings",
                    )
        self.generic_visit(node)


def check(context: CheckContext, tree: ast.AST) -> list[Finding]:
    """Run the DET family over one parsed file."""
    visitor = DetVisitor(context, tree)
    visitor.visit(tree)
    return visitor.findings

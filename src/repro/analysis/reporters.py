"""detlint output: the human report and the JSON artifact."""

from __future__ import annotations

from typing import Any

from repro.analysis.engine import LintReport
from repro.analysis.rules import RULES


def render_text(report: LintReport, verbose: bool = False) -> str:
    """The human-readable report.

    Active findings always print; pass ``verbose`` to also list what
    the pragmas and the baseline are currently suppressing.
    """
    lines: list[str] = []
    for error in report.parse_errors:
        lines.append(f"parse error: {error}")
    for finding in report.active:
        rule = RULES[finding.rule]
        lines.append(
            f"{finding.location()}: {finding.rule} [{rule.family}] {finding.message}"
        )
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    if verbose:
        for finding in report.findings:
            if finding.active:
                continue
            reason = f" ({finding.suppression_reason})" if finding.suppression_reason else ""
            lines.append(
                f"{finding.location()}: {finding.rule} suppressed by "
                f"{finding.suppressed_by}{reason}"
            )
    stale = report.baseline.stale_entries()
    for entry in stale:
        lines.append(
            f"stale baseline entry: {entry.rule} in {entry.module} no longer "
            f"matches anything ({entry.context!r}) — regenerate with --update-baseline"
        )
    unjustified = report.baseline.unjustified_entries()
    for entry in unjustified:
        lines.append(
            f"baseline entry without justification: {entry.rule} in "
            f"{entry.module} ({entry.context!r}) — every suppression needs a reason"
        )
    lines.append(
        f"detlint: {report.files_scanned} file(s), "
        f"{len(report.active)} active finding(s), "
        f"{len(report.pragma_suppressed)} pragma-suppressed, "
        f"{len(report.baseline_suppressed)} baseline-suppressed"
    )
    if report.incremental:
        lines.append(
            f"detlint cache: {len(report.modules_analysed)} module(s) "
            f"re-analysed, {len(report.modules_cached)} served from cache"
        )
        if verbose and report.modules_analysed:
            lines.append(
                "    re-analysed: " + ", ".join(sorted(report.modules_analysed))
            )
    return "\n".join(lines)


def render_json(report: LintReport) -> dict[str, Any]:
    """The machine-readable report (CI artifact / --json)."""
    return {
        "files_scanned": report.files_scanned,
        "incremental": report.incremental,
        "modules_analysed": sorted(report.modules_analysed),
        "modules_cached": sorted(report.modules_cached),
        "parse_errors": list(report.parse_errors),
        "findings": [finding.to_jsonable() for finding in report.findings],
        "counts": {
            "active": len(report.active),
            "pragma_suppressed": len(report.pragma_suppressed),
            "baseline_suppressed": len(report.baseline_suppressed),
        },
        "baseline": {
            "entries": len(report.baseline.entries),
            "stale": [entry.to_jsonable() for entry in report.baseline.stale_entries()],
            "unjustified": [
                entry.to_jsonable() for entry in report.baseline.unjustified_entries()
            ],
        },
        "ok": report.ok
        and not report.baseline.unjustified_entries()
        and not report.baseline.stale_entries(),
    }


def render_rule_catalog() -> str:
    """The ``--rules`` listing."""
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id} [{rule.family}] {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)

"""Small AST helpers shared by the detlint checkers."""

from __future__ import annotations

import ast
from typing import Optional


def build_import_table(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted things they import.

    ``import os.path`` binds ``os`` -> ``os``; ``from datetime import
    datetime as dt`` binds ``dt`` -> ``datetime.datetime``.  Wildcard
    imports are ignored (nothing in this repo uses them).
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports stay package-local
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def dotted_name(node: ast.AST, imports: dict[str, str]) -> Optional[str]:
    """The dotted name of a Name/Attribute chain, import-expanded.

    ``datetime.now`` with ``from datetime import datetime`` resolves to
    ``datetime.datetime.now``.  Returns ``None`` for anything rooted in
    a call, subscript or literal.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def root_of(node: ast.AST) -> Optional[tuple[str, str]]:
    """The base of an attribute/subscript chain.

    Returns ``("name", identifier)`` for plain roots, ``("self_attr",
    attr)`` for chains hanging off ``self.<attr>``, or ``None`` when
    the chain bottoms out in a call or literal.
    """
    seen_attrs: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            seen_attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    if node.id == "self" and seen_attrs:
        return ("self_attr", seen_attrs[-1])
    return ("name", node.id)


def annotation_is_set(node: Optional[ast.AST]) -> bool:
    """Whether a type annotation denotes ``set``/``frozenset``."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text.startswith(("set[", "frozenset[", "set", "frozenset"))
    return False


def type_checking_lines(tree: ast.AST) -> set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (exempt zones)."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = None
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name == "TYPE_CHECKING":
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines

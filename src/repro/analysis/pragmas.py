"""Inline suppression pragmas.

Two forms, mirroring the usual linter conventions::

    risky_call()  # detlint: disable=DET005 -- iteration feeds a set, order-free
    # detlint: disable-next-line=OBS002 -- sampler schedules read-only callbacks
    cluster.loop.call_after(...)

Multiple rules separate with commas; ``disable=all`` silences every
rule on the line.  The text after ``--`` is the justification; reports
carry it alongside the suppressed finding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_PRAGMA = re.compile(
    r"#\s*detlint:\s*(?P<kind>disable|disable-next-line)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*?)\s*)?$"
)


@dataclass(frozen=True)
class Pragma:
    """One suppression pragma: the rules it silences and why."""

    rules: frozenset[str]  # upper-cased rule ids, or {"ALL"}
    reason: str

    def covers(self, rule_id: str) -> bool:
        return "ALL" in self.rules or rule_id in self.rules


def parse_pragmas(lines: list[str]) -> dict[int, Pragma]:
    """Map 1-based line number -> pragma in force on that line."""
    by_line: dict[int, Pragma] = {}
    for index, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        pragma = Pragma(rules=rules, reason=match.group("reason") or "")
        target = index + 1 if match.group("kind") == "disable-next-line" else index
        existing = by_line.get(target)
        if existing is not None:
            pragma = Pragma(
                rules=existing.rules | pragma.rules,
                reason=existing.reason or pragma.reason,
            )
        by_line[target] = pragma
    return by_line

"""OBS family: observer purity and the hook-API boundary.

The observability layer promises byte-identical simulation results with
tracing on or off.  Statically that decomposes into:

* ``repro.obs`` never *writes* simulation state — no attribute
  assignment on sim objects beyond the sanctioned hook attributes
  (OBS001), no mutating method calls on them (OBS002), no RNG use
  (OBS004).
* The simulation core never imports ``repro.obs`` (OBS003) — protocols
  see observability only as the opaque ``self.obs`` hook, so the
  dependency cannot invert.

"Simulation object" is resolved by a per-function taint walk: function
parameters (other than ``self``), names derived from them, and
``self.<attr>`` for the attrs observers stash sim objects in
(``config.OBS_SIM_SELF_ATTRS``).  Names bound to locally-constructed
values (calls, literals) are exempt — an observer mutating its own
report rows is fine.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis import config
from repro.analysis.astutil import root_of, type_checking_lines
from repro.analysis.findings import CheckContext, Finding

_LOCAL_VALUE_TYPES = (
    ast.Call,
    ast.Dict,
    ast.List,
    ast.Set,
    ast.Tuple,
    ast.Constant,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.BinOp,
    ast.JoinedStr,
)


class _Scope:
    """Taint state of one function body."""

    def __init__(self, params: list[str]):
        self.derived: set[str] = {p for p in params if p not in ("self", "cls")}
        self.local: set[str] = set()

    def is_sim_rooted(self, node: ast.AST) -> bool:
        root = root_of(node)
        if root is None:
            return False
        kind, name = root
        if kind == "self_attr":
            return name in config.OBS_SIM_SELF_ATTRS
        if name in self.derived:
            return True
        return False


def _bind(scope: _Scope, target: ast.AST, value: ast.AST) -> None:
    """Record what an assignment teaches us about a name."""
    if not isinstance(target, ast.Name):
        return
    if isinstance(value, _LOCAL_VALUE_TYPES):
        # Locally constructed — but a call *on* a sim object returns
        # sim state often enough that `x = replica.foo()` stays exempt
        # only because observers read values, not objects, that way.
        scope.local.add(target.id)
        scope.derived.discard(target.id)
    elif isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
        if scope.is_sim_rooted(value):
            scope.derived.add(target.id)
            scope.local.discard(target.id)


def _collect_bindings(scope: _Scope, func: ast.AST) -> None:
    """Two-pass taint: gather every binding before flagging uses."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _bind(scope, target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            _bind(scope, node.target, node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if scope.is_sim_rooted(node.iter):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        scope.derived.add(name_node.id)


class PurityVisitor(ast.NodeVisitor):
    """Emits OBS001/OBS002/OBS004 findings for one repro.obs file."""

    def __init__(self, context: CheckContext):
        self.ctx = context
        self.findings: list[Finding] = []
        self._scopes: list[_Scope] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.ctx.active_rules:
            self.findings.append(self.ctx.make(rule, node, message))

    def _scope(self) -> Optional[_Scope]:
        return self._scopes[-1] if self._scopes else None

    def _visit_function(self, node) -> None:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        scope = _Scope(params)
        _collect_bindings(scope, node)
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _describe(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:
            return "a simulation object"

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_attr_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_attr_write(node.target)
        self.generic_visit(node)

    def _check_attr_write(self, target: ast.AST) -> None:
        scope = self._scope()
        if scope is None or not isinstance(target, ast.Attribute):
            return
        if target.attr in config.OBS_HOOK_ATTRS:
            return
        if scope.is_sim_rooted(target.value):
            self._emit(
                "OBS001",
                target,
                f"observer assigns `{self._describe(target)}` on a "
                "simulation object; only the hook attributes "
                f"({', '.join(sorted(config.OBS_HOOK_ATTRS))}) may be set",
            )

    def visit_Call(self, node: ast.Call) -> None:
        scope = self._scope()
        if (
            scope is not None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in config.MUTATING_METHODS
            and scope.is_sim_rooted(node.func.value)
        ):
            self._emit(
                "OBS002",
                node,
                f"observer calls mutating `{self._describe(node.func)}()` "
                "on a simulation object (observer-only contract)",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "rng":
            self._emit(
                "OBS004",
                node,
                "observer reaches into an RNG (`.rng`); observers must "
                "not consume or expose randomness",
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._emit(
                    "OBS004", node, "observer imports the random module"
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._emit("OBS004", node, "observer imports from the random module")
        self.generic_visit(node)


def check(context: CheckContext, tree: ast.AST) -> list[Finding]:
    """Run the OBS family over one parsed file."""
    findings: list[Finding] = []
    if {"OBS001", "OBS002", "OBS004"} & context.active_rules:
        visitor = PurityVisitor(context)
        visitor.visit(tree)
        findings.extend(visitor.findings)
    if "OBS003" in context.active_rules:
        findings.extend(_check_obs_imports(context, tree))
    return findings


def _check_obs_imports(context: CheckContext, tree: ast.AST) -> list[Finding]:
    """OBS003: the simulation core must not import repro.obs."""
    exempt = type_checking_lines(tree)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        imported: Optional[str] = None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.obs" or alias.name.startswith("repro.obs."):
                    imported = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.obs" or module.startswith("repro.obs."):
                imported = module
            elif module == "repro":
                for alias in node.names:
                    if alias.name == "obs":
                        imported = "repro.obs"
        if imported is None or node.lineno in exempt:
            continue
        findings.append(
            context.make(
                "OBS003",
                node,
                f"simulation module imports {imported}; protocols reach "
                "observability only through the self.obs hook API",
            )
        )
    return findings

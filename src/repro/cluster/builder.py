"""Cluster assembly: one function builds any of the paper's systems.

The registry maps the system names used throughout the evaluation to
their configuration, replica class and client class:

=============== ======================================================
``idem``          IDEM as presented in Sections 4-5 (AQM acceptance,
                  optimistic clients)
``idem-nopr``     IDEM with proactive rejection disabled
``idem-noaqm``    IDEM with plain tail-drop acceptance (Section 7.7)
``idem-pessimistic``  IDEM with pessimistic clients (Section 5.3)
``idem-cost``     IDEM with the cost-aware acceptance test (Section 5.1)
``idem-adaptive``  IDEM with the self-tuning reject threshold (Section 7.5)
``idem-multileader``  Mencius-style multi-leader IDEM (related-work claim)
``paxos``         Kirsch-Amir Paxos sharing IDEM's code base
``paxos-lbr``     Paxos with leader-based rejection (Section 3.3)
``bftsmart``      the BFT-SMaRt-like production-library stand-in
=============== ======================================================
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.app.kvstore import KeyValueStore
from repro.cluster.metrics import MetricsCollector
from repro.cluster.profile import ClusterProfile
from repro.core.client import IdemClient
from repro.core.config import IdemConfig
from repro.core.multileader import MultiLeaderIdemReplica
from repro.core.replica import IdemReplica
from repro.net.network import Network
from repro.protocols.base import BaseReplica
from repro.protocols.bftsmart.replica import BftSmartReplica
from repro.protocols.clients import (
    BaseClient,
    BroadcastClient,
    LbrClient,
    SingleTargetClient,
)
from repro.protocols.config import ProtocolConfig
from repro.protocols.paxos.config import PaxosConfig
from repro.protocols.paxos.replica import PaxosReplica
from repro.population.aggregate import AggregateClientNode
from repro.population.spec import PopulationSpec
from repro.sim.cores import make_loop
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.workload.open_loop import ArrivalSpec
from repro.workload.schedule import LoadSchedule
from repro.workload.ycsb import YcsbWorkload

# How long after t=0 the last client starts (staggered ramp-up).
CLIENT_RAMP = 0.1


@dataclass
class SystemSpec:
    """Registry entry: how to build one system."""

    config_class: type
    replica_class: type
    client_class: type
    config_defaults: dict[str, Any]
    # CPU cost multiplier; None means "use the profile's BFT-SMaRt factor".
    cost_factor: Optional[float] = 1.0


SYSTEMS: dict[str, SystemSpec] = {
    "idem": SystemSpec(IdemConfig, IdemReplica, IdemClient, {}),
    "idem-nopr": SystemSpec(
        IdemConfig, IdemReplica, IdemClient, {"rejection_enabled": False}
    ),
    "idem-noaqm": SystemSpec(
        IdemConfig, IdemReplica, IdemClient, {"acceptance": "taildrop"}
    ),
    "idem-pessimistic": SystemSpec(
        IdemConfig, IdemReplica, IdemClient, {"optimistic_client": False}
    ),
    "idem-cost": SystemSpec(
        IdemConfig, IdemReplica, IdemClient, {"acceptance": "cost"}
    ),
    "idem-adaptive": SystemSpec(
        IdemConfig, IdemReplica, IdemClient, {"acceptance": "adaptive"}
    ),
    "idem-multileader": SystemSpec(
        IdemConfig, MultiLeaderIdemReplica, IdemClient, {}
    ),
    "paxos": SystemSpec(PaxosConfig, PaxosReplica, SingleTargetClient, {}),
    "paxos-lbr": SystemSpec(
        PaxosConfig, PaxosReplica, LbrClient, {"leader_rejection": True}
    ),
    "bftsmart": SystemSpec(
        ProtocolConfig, BftSmartReplica, BroadcastClient, {}, cost_factor=None
    ),
}


class Cluster:
    """A fully assembled system: loop, network, replicas, clients, metrics."""

    def __init__(
        self,
        system: str,
        loop: EventLoop,
        rng: RngRegistry,
        network: Network,
        config: ProtocolConfig,
        replicas: list[BaseReplica],
        clients: list[BaseClient],
        metrics: MetricsCollector,
        workload: YcsbWorkload,
        replica_factory: Optional[Callable[[int], BaseReplica]] = None,
    ):
        self.system = system
        self.loop = loop
        self.rng = rng
        self.network = network
        self.config = config
        self.replicas = replicas
        self.clients = clients
        self.metrics = metrics
        self.workload = workload
        # Builds a fresh replica for an index (crash-recovery rejoin).
        self.replica_factory = replica_factory
        self.recoveries = 0
        # Set by ObservabilityHub.attach (repro.obs); None when tracing
        # is disabled, which keeps the per-hook cost to one None check.
        self.observability = None

    def run_until(self, horizon: float) -> None:
        """Advance the simulation to ``horizon`` seconds."""
        self.loop.run_until(horizon)

    def crash_replica(self, index: int) -> None:
        """Crash replica ``index`` (processor halted, links severed)."""
        self.replicas[index].crash()

    def recover_replica(self, index: int) -> BaseReplica:
        """Rejoin crashed replica ``index`` with fresh volatile state.

        Crash-recovery without stable storage: the old incarnation's
        in-memory state is gone, so a *new* replica object (preloaded
        initial state machine, view 0, empty log) is attached under the
        reused address and catches up through the group's regular paths
        — DECIDED replay while instances are retained, checkpoint/state
        transfer once it is behind the window.  Recovering a live
        replica is a no-op (randomized schedules may race their own
        crashes).
        """
        old = self.replicas[index]
        if not old.halted:
            return old
        if self.replica_factory is None:
            raise ValueError("cluster was built without a replica factory")
        # Detach purges every trace of the old incarnation from the
        # fabric (crash marking, partitions, egress backlog, latency
        # degradation) so the newcomer starts from a clean slate.
        self.network.detach(old.address)
        replica = self.replica_factory(index)
        replica.incarnation = old.incarnation + 1
        replica.exec_observer = old.exec_observer
        if self.observability is not None:
            self.observability.attach_replica(replica)
        self.network.attach(replica)
        self.replicas[index] = replica
        self.recoveries += 1
        replica.bootstrap()
        return replica

    def current_leader(self) -> int:
        """Leader index of the highest view among live replicas."""
        views = [replica.view for replica in self.replicas if not replica.halted]
        return self.config.leader_of(max(views)) if views else -1

    def replica_stats(self) -> list[dict[str, float]]:
        """Per-replica protocol statistics plus CPU utilisation."""
        stats = []
        for replica in self.replicas:
            entry: dict[str, float] = dict(replica.stats)
            entry["utilization"] = replica.processor.utilization(self.loop.now)
            entry["view"] = replica.view
            stats.append(entry)
        return stats

    def client_stats(self) -> dict[str, float]:
        """Aggregate client-side resilience counters over all clients.

        ``load_amplification`` is the run's send amplification: every
        request copy put on the wire (first sends, retransmits,
        failovers, retries, hedges) divided by distinct commands.
        """
        totals = {
            "commands": 0,
            "sends": 0,
            "retries": 0,
            "hedges": 0,
            "give_ups": 0,
            "successes": 0,
            "rejections": 0,
            "timeouts": 0,
        }
        for client in self.clients:
            totals["commands"] += client.commands_started
            totals["sends"] += client.sends
            totals["retries"] += client.retries
            totals["hedges"] += client.hedges
            totals["give_ups"] += client.give_ups
            totals["successes"] += client.successes
            totals["rejections"] += client.rejections
            totals["timeouts"] += client.timeouts
        totals["load_amplification"] = (
            totals["sends"] / totals["commands"] if totals["commands"] else 1.0
        )
        return totals

    def stop_clients(self) -> None:
        """Stop all closed-loop clients (end of measurement)."""
        for client in self.clients:
            client.stop()


def build_config(
    system: str,
    profile: ClusterProfile,
    overrides: Optional[dict[str, Any]] = None,
) -> ProtocolConfig:
    """Build the protocol configuration for ``system`` under ``profile``."""
    spec = SYSTEMS[system]
    factor = (
        profile.bftsmart_cost_factor if spec.cost_factor is None else spec.cost_factor
    )
    values: dict[str, Any] = {
        "n": profile.n,
        "f": profile.f,
        "cost_client_request": profile.cost_client_request * factor,
        "cost_message": profile.cost_message * factor,
        "cost_per_id": profile.cost_per_id * factor,
        "cost_send": profile.cost_send * factor,
        "cost_per_byte": profile.cost_per_byte * factor,
        "cost_execution_overhead": profile.cost_execution_overhead * factor,
        "cpu_jitter_sigma": profile.cpu_jitter_sigma,
    }
    values.update(spec.config_defaults)
    if overrides:
        values.update(overrides)
    field_names = {f.name for f in dataclasses.fields(spec.config_class)}
    unknown = set(values) - field_names
    if unknown:
        raise ValueError(f"unknown config overrides for {system}: {sorted(unknown)}")
    return spec.config_class(**values)


def build_cluster(
    system: str,
    clients: int,
    seed: int = 0,
    profile: Optional[ClusterProfile] = None,
    overrides: Optional[dict[str, Any]] = None,
    window_start: float = 0.0,
    window_end: float = math.inf,
    schedule: Optional[LoadSchedule] = None,
    bucket_width: float = 0.25,
    stop_time: float = math.inf,
    fallback_factory: Optional[Callable[[int], Callable]] = None,
    start_clients: bool = True,
    population: Optional[PopulationSpec] = None,
    arrivals: Optional[ArrivalSpec] = None,
    core: Optional[str] = None,
) -> Cluster:
    """Assemble a ready-to-run cluster of ``system`` with ``clients`` clients.

    ``window_start``/``window_end`` bound the measurement window of the
    metrics collector (warm-up exclusion); ``schedule`` optionally
    activates only a subset of clients over time; ``fallback_factory``
    builds each semi-autonomous client's local fallback procedure
    (called with the client id, returns a callable taking the abandoned
    command).  Pass ``start_clients=False`` when an external driver
    (e.g. :class:`repro.workload.OpenLoopDriver`) owns client
    scheduling.

    When ``population`` is set the per-object clients are replaced by a
    single :class:`~repro.population.AggregateClientNode` standing in
    for all ``clients`` virtual clients (see ``docs/WORKLOADS.md``);
    ``arrivals`` then optionally drives it open-loop (otherwise the
    node runs the spec's closed-loop / analytic-feedback modes).

    ``core`` selects the event-loop backend (``"tuple"``/``"array"``,
    see :mod:`repro.sim.cores`); ``None`` uses the process default.
    Both cores dispatch identically, so this is a speed knob only.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; choose from {sorted(SYSTEMS)}")
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    profile = profile or ClusterProfile()
    spec = SYSTEMS[system]
    loop = make_loop(core)
    rng = RngRegistry(seed)
    network = Network(
        loop,
        rng,
        latency_model=profile.latency_model(),
        loss_probability=profile.loss_probability,
        egress_bandwidth=profile.egress_bandwidth,
    )
    config = build_config(system, profile, overrides)
    if population is not None and population.think_time is not None:
        # The population's think time governs the whole run — including
        # the retry policies' timeout backoff, exactly as it would for
        # per-object clients configured with the same value.
        config = dataclasses.replace(config, think_time=population.think_time)
    metrics = MetricsCollector(window_start, window_end, bucket_width)
    workload = YcsbWorkload(profile.workload)

    def make_replica(index: int) -> BaseReplica:
        state_machine = KeyValueStore(base_execution_cost=profile.execution_cost)
        workload.preload(state_machine)
        return spec.replica_class(index, loop, network, config, state_machine, rng)

    replicas: list[BaseReplica] = []
    for index in range(config.n):
        replica = make_replica(index)
        network.attach(replica)
        replicas.append(replica)

    if population is not None:
        if fallback_factory is not None:
            raise ValueError(
                "the aggregate population backend does not support "
                "per-client fallback procedures"
            )
        node = AggregateClientNode(
            population,
            spec.client_class,
            loop,
            network,
            config,
            metrics,
            workload,
            rng,
            clients,
            stop_time=stop_time,
            schedule=schedule,
            arrivals=arrivals,
            ramp=CLIENT_RAMP,
        )
        # The node is routed, not attached: replies to any fabricated
        # client address land on it.
        network.client_router = node
        if start_clients:
            node.start()
        return Cluster(
            system,
            loop,
            rng,
            network,
            config,
            replicas,
            [node],
            metrics,
            workload,
            replica_factory=make_replica,
        )

    client_nodes: list[BaseClient] = []
    for cid in range(clients):
        client = spec.client_class(
            cid,
            loop,
            network,
            config,
            metrics,
            workload,
            rng,
            stop_time=stop_time,
            schedule=schedule,
            fallback=fallback_factory(cid) if fallback_factory else None,
        )
        network.attach(client)
        client_nodes.append(client)
        if start_clients:
            client.start(at=CLIENT_RAMP * (cid + 1) / clients)

    return Cluster(
        system,
        loop,
        rng,
        network,
        config,
        replicas,
        client_nodes,
        metrics,
        workload,
        replica_factory=make_replica,
    )

"""Fault injection for experiments.

The paper's crash experiments (Figures 3 and 10) deliberately crash the
leader or a follower mid-run.  Targets are resolved *at crash time*
against the current view, so "leader" means whoever leads when the
fault fires — even if earlier faults already moved the leadership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

LEADER = "leader"
FOLLOWER = "follower"


@dataclass(frozen=True)
class CrashFault:
    """Crash one replica at an absolute simulated time.

    ``target`` is a replica index, ``"leader"`` or ``"follower"``.
    """

    time: float
    target: Union[int, str]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if isinstance(self.target, str) and self.target not in (LEADER, FOLLOWER):
            raise ValueError(f"unknown crash target: {self.target!r}")


@dataclass
class FaultSchedule:
    """An ordered collection of faults applied to a cluster."""

    faults: list[CrashFault] = field(default_factory=list)

    def crash_leader(self, at: float) -> "FaultSchedule":
        """Add a leader crash at time ``at`` (chainable)."""
        self.faults.append(CrashFault(at, LEADER))
        return self

    def crash_follower(self, at: float) -> "FaultSchedule":
        """Add a follower crash at time ``at`` (chainable)."""
        self.faults.append(CrashFault(at, FOLLOWER))
        return self

    def crash_replica(self, at: float, index: int) -> "FaultSchedule":
        """Add a crash of a specific replica at time ``at`` (chainable)."""
        self.faults.append(CrashFault(at, index))
        return self

    def install(self, cluster) -> None:
        """Schedule all faults on the cluster's event loop."""
        for fault in self.faults:
            cluster.loop.call_at(fault.time, self._fire, cluster, fault)

    @staticmethod
    def _fire(cluster, fault: CrashFault) -> None:
        index = resolve_target(cluster, fault.target)
        if index is not None:
            cluster.crash_replica(index)


def resolve_target(cluster, target: Union[int, str]) -> Union[int, None]:
    """Resolve a crash target to a replica index against the live view."""
    alive = [replica for replica in cluster.replicas if not replica.halted]
    if not alive:
        return None
    if isinstance(target, int):
        return target if not cluster.replicas[target].halted else None
    current_view = max(replica.view for replica in alive)
    leader_index = current_view % len(cluster.replicas)
    if target == LEADER:
        candidate = cluster.replicas[leader_index]
        return leader_index if not candidate.halted else None
    for replica in alive:
        if replica.index != leader_index:
            return replica.index
    return None

"""Fault injection for experiments: a small fault-plan DSL.

The paper's crash experiments (Figures 3 and 10) deliberately crash the
leader or a follower mid-run.  Targets are resolved *at fire time*
against the current view, so "leader" means whoever leads when the
fault fires — even if earlier faults already moved the leadership.

Beyond crash-stop, the DSL covers the failure modes a replicated system
meets in production:

* :class:`RecoverFault` — a crashed replica rejoins with fresh volatile
  state and catches up through the checkpoint/state-transfer path.
* :class:`PartitionFault` / :class:`HealFault` — scheduled partitions
  between replica pairs (delivery suppressed both ways).
* :class:`LossWindow` — a time-bounded window of elevated message loss.
* :class:`SlowReplica` — a gray failure: one replica's CPU serves jobs
  slower for a while (it is alive, just degraded).
* :class:`LatencySpike` — a gray failure on the wire: all traffic
  to/from one replica takes a multiple of its normal latency.

A :class:`FaultSchedule` is an ordered plan of such faults; installing
it on a cluster schedules each fault on the simulation's event loop.
All faults resolve their targets lazily and ignore targets that no
longer make sense (already crashed, out of range), so randomized plans
never abort a run half-way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.net.addresses import replica_address

LEADER = "leader"
FOLLOWER = "follower"


@dataclass(frozen=True)
class Fault:
    """A single scheduled fault; subclasses define what firing does."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")

    def fire(self, cluster) -> None:
        """Apply the fault to ``cluster`` (called at ``self.time``)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Deterministic one-line rendering for chaos-plan summaries."""
        fields = ", ".join(
            f"{name}={value!r}"
            for name, value in vars(self).items()
            if name != "time"
        )
        return f"t={self.time:.3f} {type(self).__name__}({fields})"


def _check_duration(duration: float) -> None:
    if duration <= 0:
        raise ValueError(f"fault duration must be positive, got {duration}")


@dataclass(frozen=True)
class CrashFault(Fault):
    """Crash one replica at an absolute simulated time.

    ``target`` is a replica index, ``"leader"`` or ``"follower"``.
    """

    target: Union[int, str]

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.target, str) and self.target not in (LEADER, FOLLOWER):
            raise ValueError(f"unknown crash target: {self.target!r}")

    def fire(self, cluster) -> None:
        index = resolve_target(cluster, self.target)
        if index is not None:
            cluster.crash_replica(index)


@dataclass(frozen=True)
class RecoverFault(Fault):
    """Rejoin a crashed replica with fresh volatile state.

    ``target`` is a replica index, or ``None`` to recover every replica
    that is currently crashed.  Recovering a live replica is a no-op.
    """

    target: Union[int, None] = None

    def fire(self, cluster) -> None:
        if self.target is None:
            targets = [r.index for r in cluster.replicas if r.halted]
        elif 0 <= self.target < len(cluster.replicas):
            targets = [self.target]
        else:
            targets = []
        for index in targets:
            cluster.recover_replica(index)


@dataclass(frozen=True)
class PartitionFault(Fault):
    """Block delivery between replicas ``a`` and ``b`` in both directions."""

    a: int
    b: int

    def fire(self, cluster) -> None:
        n = len(cluster.replicas)
        if 0 <= self.a < n and 0 <= self.b < n and self.a != self.b:
            cluster.network.partition(replica_address(self.a), replica_address(self.b))


@dataclass(frozen=True)
class HealFault(Fault):
    """Remove the partition between replicas ``a`` and ``b``."""

    a: int
    b: int

    def fire(self, cluster) -> None:
        cluster.network.heal(replica_address(self.a), replica_address(self.b))


@dataclass(frozen=True)
class LossWindow(Fault):
    """Elevate the network's message-loss probability for a time window."""

    duration: float
    probability: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_duration(self.duration)
        if not 0.0 <= self.probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {self.probability}"
            )

    def fire(self, cluster) -> None:
        network = cluster.network
        base = network.loss_probability
        network.loss_probability = self.probability
        cluster.loop.call_after(self.duration, self._restore, network, base)

    @staticmethod
    def _restore(network, base: float) -> None:
        network.loss_probability = base


@dataclass(frozen=True)
class SlowReplica(Fault):
    """Gray failure: serve one replica's CPU ``factor`` times slower."""

    target: int
    factor: float
    duration: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_duration(self.duration)
        if self.factor <= 1.0:
            raise ValueError(f"slowdown factor must exceed 1, got {self.factor}")

    def fire(self, cluster) -> None:
        if not 0 <= self.target < len(cluster.replicas):
            return
        replica = cluster.replicas[self.target]
        if replica.halted:
            return
        base = replica.processor.speed
        replica.processor.set_speed(base / self.factor)
        cluster.loop.call_after(self.duration, self._restore, cluster, base)

    def _restore(self, cluster, base: float) -> None:
        # Look the replica up again: it may have crashed and been
        # replaced by a fresh (full-speed) incarnation in the meantime.
        replica = cluster.replicas[self.target]
        if replica.processor.speed < base:
            replica.processor.set_speed(base)


@dataclass(frozen=True)
class LatencySpike(Fault):
    """Gray failure: inflate all link latency to/from one replica."""

    target: int
    factor: float
    duration: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_duration(self.duration)
        if self.factor <= 1.0:
            raise ValueError(f"latency factor must exceed 1, got {self.factor}")

    def fire(self, cluster) -> None:
        if not 0 <= self.target < len(cluster.replicas):
            return
        address = replica_address(self.target)
        cluster.network.set_latency_scale(address, self.factor)
        cluster.loop.call_after(
            self.duration, cluster.network.clear_latency_scale, address
        )


@dataclass
class FaultSchedule:
    """An ordered collection of faults applied to a cluster."""

    faults: list[Fault] = field(default_factory=list)

    def crash_leader(self, at: float) -> "FaultSchedule":
        """Add a leader crash at time ``at`` (chainable)."""
        self.faults.append(CrashFault(at, LEADER))
        return self

    def crash_follower(self, at: float) -> "FaultSchedule":
        """Add a follower crash at time ``at`` (chainable)."""
        self.faults.append(CrashFault(at, FOLLOWER))
        return self

    def crash_replica(self, at: float, index: int) -> "FaultSchedule":
        """Add a crash of a specific replica at time ``at`` (chainable)."""
        self.faults.append(CrashFault(at, index))
        return self

    def recover_replica(self, at: float, index: Union[int, None] = None) -> "FaultSchedule":
        """Recover replica ``index`` (or all crashed replicas) at ``at``."""
        self.faults.append(RecoverFault(at, index))
        return self

    def partition_replicas(self, at: float, a: int, b: int) -> "FaultSchedule":
        """Partition replicas ``a`` and ``b`` at time ``at``."""
        self.faults.append(PartitionFault(at, a, b))
        return self

    def heal_replicas(self, at: float, a: int, b: int) -> "FaultSchedule":
        """Heal the partition between ``a`` and ``b`` at time ``at``."""
        self.faults.append(HealFault(at, a, b))
        return self

    def loss_window(
        self, at: float, duration: float, probability: float
    ) -> "FaultSchedule":
        """Raise message loss to ``probability`` for ``duration`` seconds."""
        self.faults.append(LossWindow(at, duration, probability))
        return self

    def slow_replica(
        self, at: float, index: int, factor: float, duration: float
    ) -> "FaultSchedule":
        """Slow replica ``index`` down by ``factor`` for ``duration`` seconds."""
        self.faults.append(SlowReplica(at, index, factor, duration))
        return self

    def latency_spike(
        self, at: float, index: int, factor: float, duration: float
    ) -> "FaultSchedule":
        """Inflate replica ``index``'s link latency for ``duration`` seconds."""
        self.faults.append(LatencySpike(at, index, factor, duration))
        return self

    def install(self, cluster) -> None:
        """Schedule all faults on the cluster's event loop."""
        for fault in self.faults:
            cluster.loop.call_at(fault.time, fault.fire, cluster)

    def describe(self) -> list[str]:
        """Deterministic rendering of the plan, in schedule order."""
        return [fault.describe() for fault in sorted(self.faults, key=lambda f: f.time)]


def resolve_target(cluster, target: Union[int, str]) -> Union[int, None]:
    """Resolve a crash target to a replica index against the live view.

    Returns ``None`` when the target cannot be crashed right now: the
    index is out of range or already halted, or no replica matches the
    role.  Fault firing treats ``None`` as "skip" so schedules survive
    racing against earlier faults.
    """
    alive = [replica for replica in cluster.replicas if not replica.halted]
    if not alive:
        return None
    if isinstance(target, int):
        if not 0 <= target < len(cluster.replicas):
            return None
        return target if not cluster.replicas[target].halted else None
    current_view = max(replica.view for replica in alive)
    leader_index = cluster.config.leader_of(current_view)
    if target == LEADER:
        candidate = cluster.replicas[leader_index]
        return leader_index if not candidate.halted else None
    for replica in alive:
        if replica.index != leader_index:
            return replica.index
    return None

"""The experiment runner: one run = one seeded simulation.

A :class:`RunSpec` describes everything about a run (system, load,
duration, faults, overrides); :func:`run_experiment` executes it and
returns an :class:`~repro.cluster.metrics.ExperimentResult`.  The
conventions follow the paper's methodology (Section 7.1): a warm-up
period is excluded from measurement, and results are averaged over
multiple seeded runs by the experiment layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.faults import FaultSchedule
from repro.cluster.metrics import ExperimentResult
from repro.cluster.profile import ClusterProfile
from repro.population.aggregate import AggregateClientNode
from repro.population.spec import PopulationSpec
from repro.workload.open_loop import ArrivalSpec, OpenLoopDriver
from repro.workload.schedule import LoadSchedule


@dataclass
class RunSpec:
    """A complete description of one experiment run."""

    system: str
    clients: int
    duration: float = 1.0
    warmup: float = 0.3
    seed: int = 0
    profile: Optional[ClusterProfile] = None
    overrides: dict[str, Any] = field(default_factory=dict)
    faults: Optional[FaultSchedule] = None
    schedule: Optional[LoadSchedule] = None
    # Open-loop load generation: when set, clients are not started as a
    # closed loop; an OpenLoopDriver feeds them Poisson arrivals at the
    # spec's piecewise rates instead (metastability experiments).
    arrivals: Optional[ArrivalSpec] = None
    # Aggregate client population (repro.population): when set, the
    # ``clients`` count becomes N *virtual* clients folded into one
    # AggregateClientNode.  Composes with ``schedule`` (modulates the
    # active population) and ``arrivals`` (drives the aggregate
    # open-loop instead of closed-loop).  When None, nothing changes —
    # runs are byte-identical to the per-object client path.
    population: Optional[PopulationSpec] = None
    bucket_width: float = 0.25
    keep_metrics: bool = False
    # Attach a SafetyChecker and report invariant violations in the
    # result (crash/chaos experiments).
    safety: bool = False
    # Attach an ObservabilityHub (repro.obs): request-lifecycle tracing
    # plus periodically sampled replica internals.  Observer-only — a
    # seeded run returns byte-identical results with this on or off.
    observe: bool = False
    obs_sample_interval: float = 0.01
    # Record replica-state probe series (repro.obs.probes) into a flight
    # recorder and run the drift detectors over them; findings land in
    # ExperimentResult.findings.  Implies a hub.  Observer-pure like
    # `observe` — probing rides the same sampling tick, so a probed run
    # is byte-identical to an observed one (and to a bare one).
    probes: bool = False
    # Event-core backend ("tuple"/"array", see repro.sim.cores); None
    # uses the process default (CLI --sim-core / REPRO_SIM_CORE).  Both
    # cores dispatch identically — the equivalence suite gates that —
    # so this is a speed knob and is excluded from campaign cache keys.
    core: Optional[str] = None

    def __post_init__(self) -> None:
        if self.warmup >= self.duration:
            raise ValueError(
                f"warmup ({self.warmup}) must be shorter than the run "
                f"duration ({self.duration})"
            )


def run_experiment(spec: RunSpec) -> ExperimentResult:
    """Execute one run and collect its results."""
    cluster = build_cluster(
        spec.system,
        spec.clients,
        seed=spec.seed,
        profile=spec.profile,
        overrides=spec.overrides,
        window_start=spec.warmup,
        window_end=spec.duration,
        schedule=spec.schedule,
        bucket_width=spec.bucket_width,
        stop_time=spec.duration,
        start_clients=spec.arrivals is None or spec.population is not None,
        population=spec.population,
        arrivals=spec.arrivals if spec.population is not None else None,
        core=spec.core,
    )
    driver = None
    if spec.arrivals is not None and spec.population is None:
        driver = OpenLoopDriver(
            cluster.loop,
            cluster.clients,
            spec.arrivals,
            cluster.rng.stream("open_loop.arrivals"),
            stop_time=spec.duration,
        )
        driver.start()
    checker = None
    if spec.safety:
        from repro.cluster.chaos import SafetyChecker

        checker = SafetyChecker()
        checker.attach(cluster)
    hub = None
    if spec.observe or spec.probes:
        from repro.obs import ObservabilityHub

        # Probe-only runs keep a minimal tracer (events drop at the cap)
        # so the recorder's memory footprint dominates, not the trace.
        hub = ObservabilityHub(
            sample_interval=spec.obs_sample_interval,
            max_events=2_000_000 if spec.observe else 1,
            probes=spec.probes,
        )
        hub.attach(cluster, horizon=spec.duration)
        if spec.faults is not None:
            hub.annotate_faults(spec.faults, spec.duration)
    if spec.faults is not None:
        spec.faults.install(cluster)
    cluster.run_until(spec.duration)
    return collect_result(spec, cluster, checker, hub, driver)


def collect_result(
    spec: RunSpec, cluster: Cluster, checker=None, hub=None, driver=None
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` from a finished cluster."""
    metrics = cluster.metrics
    client_stats = cluster.client_stats()
    if driver is not None:
        client_stats["arrivals"] = driver.arrivals
        client_stats["shed_arrivals"] = driver.shed_arrivals
    elif len(cluster.clients) == 1 and isinstance(
        cluster.clients[0], AggregateClientNode
    ):
        node = cluster.clients[0]
        client_stats["virtual_clients"] = node.n_clients
        client_stats["arrivals"] = node.arrivals_generated
        client_stats["shed_arrivals"] = node.shed_arrivals
        client_stats["lost_arrivals"] = node.lost_arrivals
        client_stats["feedback_ticks"] = node.feedback_ticks
    findings = None
    if hub is not None and hub.recorder is not None:
        from repro.obs import DetectorConfig, findings_jsonable, run_detectors

        findings = findings_jsonable(
            run_detectors(
                hub.recorder,
                DetectorConfig(interval=spec.obs_sample_interval),
            )
        )
    return ExperimentResult(
        system=spec.system,
        clients=spec.clients,
        seed=spec.seed,
        duration=spec.duration,
        warmup=spec.warmup,
        throughput=metrics.throughput(),
        latency=metrics.latency_summary(),
        reject_throughput=metrics.reject_throughput(),
        reject_latency=metrics.reject_latency_summary(),
        timeouts=metrics.timeouts,
        traffic=cluster.network.traffic.snapshot(),
        replica_stats=cluster.replica_stats(),
        metrics=metrics if spec.keep_metrics else None,
        # The run stops mid-flight (no drain), so window-deep lag
        # between live replicas is legitimate; allow double slack.
        safety_violations=(
            checker.finish(cluster, lag_slack=2.0) if checker is not None else None
        ),
        obs=hub,
        findings=findings,
        sim_stats={
            "dispatched_events": cluster.loop.dispatched_events,
            "peak_heap": cluster.loop.peak_heap,
            "drained_tombstones": cluster.loop.drained_tombstones,
        },
        client_stats=client_stats,
    )

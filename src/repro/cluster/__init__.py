"""Experiment harness: cluster assembly, fault injection, metrics, runner."""

from repro.cluster.builder import SYSTEMS, build_cluster
from repro.cluster.faults import CrashFault, FaultSchedule
from repro.cluster.metrics import ExperimentResult, MetricsCollector
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec, run_experiment

__all__ = [
    "ClusterProfile",
    "CrashFault",
    "ExperimentResult",
    "FaultSchedule",
    "MetricsCollector",
    "RunSpec",
    "SYSTEMS",
    "build_cluster",
    "run_experiment",
]

"""Randomized chaos ("nemesis") testing with machine-checked invariants.

Deterministic simulation makes large randomized fault campaigns cheap:
a :class:`ChaosRunner` derives a fault plan from a seed — crashes with
crash-recovery rejoins, partitions with heals, loss windows and gray
failures (slow CPUs, latency spikes) — runs it against any registered
system, and a :class:`SafetyChecker` observes every execution and every
client reply to assert the protocol's safety invariants:

* **agreement** — every replica that executes a sequence number executes
  the same batch of requests in the same order (this is what makes the
  executed command sequences of all replicas prefix-consistent, and what
  "committed instances survive view changes" reduces to);
* **at-most-once** — no request id executes twice on one replica
  incarnation, and no request id is executed under two different
  sequence numbers anywhere in the cluster;
* **monotonic execution** — each replica incarnation executes sequence
  numbers in non-decreasing order;
* **reply validity** — every reply a client accepted corresponds to an
  execution observed on some replica;
* **convergence** — after faults heal and the run drains, live replicas
  are within the protocol's lag threshold of each other and replicas at
  equal positions hold identical application state.

Two runs with the same options produce byte-identical
:meth:`ChaosReport.summary` strings — the determinism contract the CI
smoke job enforces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.faults import CrashFault, FaultSchedule
from repro.cluster.profile import ClusterProfile
from repro.protocols.messages import Rid

# A replica incarnation: (replica index, incarnation number).
_Key = tuple[int, int]


class SafetyChecker:
    """Observes a cluster run and collects safety-invariant violations.

    Attach before the run starts; cheap per-execution checks (duplicate
    and cross-sequence-number reuse of request ids, execution order)
    happen online as executions are observed, the cross-replica checks
    (agreement, reply validity, convergence) at :meth:`finish`.
    """

    def __init__(self) -> None:
        self.violations: list[str] = []
        self.executions = 0
        # sqn -> incarnation -> rids executed under that sqn, in order.
        self._batches: dict[int, dict[_Key, list[Rid]]] = {}
        self._rid_sqn: dict[Rid, int] = {}
        self._seen: set[tuple[_Key, Rid]] = set()
        self._last_sqn: dict[_Key, int] = {}
        self._executed_rids: set[Rid] = set()
        self._clients: list = []

    def attach(self, cluster: Cluster) -> None:
        """Start observing ``cluster``'s replicas and clients."""
        for replica in cluster.replicas:
            replica.exec_observer = self._note_execution
        for client in cluster.clients:
            client.reply_log = []
        self._clients = list(cluster.clients)

    # -- online checks -------------------------------------------------

    def _note_execution(self, replica, sqn: int, rid: Rid) -> None:
        key = (replica.index, replica.incarnation)
        self.executions += 1
        self._executed_rids.add(rid)
        known = self._rid_sqn.setdefault(rid, sqn)
        if known != sqn:
            self._violate(
                f"at-most-once: rid {rid} executed at sqn {known} and sqn {sqn}"
            )
        if (key, rid) in self._seen:
            self._violate(
                f"at-most-once: replica {key} executed rid {rid} twice"
            )
        self._seen.add((key, rid))
        last = self._last_sqn.get(key, 0)
        if sqn < last:
            self._violate(
                f"order: replica {key} executed sqn {sqn} after sqn {last}"
            )
        self._last_sqn[key] = max(last, sqn)
        self._batches.setdefault(sqn, {}).setdefault(key, []).append(rid)

    def _violate(self, message: str) -> None:
        self.violations.append(message)

    # -- end-of-run checks ---------------------------------------------

    def finish(self, cluster: Cluster, lag_slack: float = 1.0) -> list[str]:
        """Run the cross-replica checks and return all violations.

        ``lag_slack`` scales the allowed divergence of live replicas'
        execution positions; pass >1 when checking a cluster mid-run
        (no drain), where window-deep lag is legitimate.
        """
        self._check_agreement()
        self._check_replies()
        self._check_convergence(cluster, lag_slack)
        return self.violations

    def _check_agreement(self) -> None:
        for sqn in sorted(self._batches):
            sequences = {tuple(rids) for rids in self._batches[sqn].values()}
            if len(sequences) > 1:
                keys = sorted(self._batches[sqn])
                self._violate(
                    f"agreement: divergent batches at sqn {sqn} across "
                    f"replicas {keys}: {sorted(sequences)}"
                )

    def _check_replies(self) -> None:
        for client in self._clients:
            for rid in client.reply_log or ():
                if rid not in self._executed_rids:
                    self._violate(
                        f"reply validity: client accepted a reply for {rid} "
                        "but no replica executed it"
                    )

    def _check_convergence(self, cluster: Cluster, lag_slack: float) -> None:
        live = [replica for replica in cluster.replicas if not replica.halted]
        if not live:
            self._violate("convergence: no live replicas at end of run")
            return
        positions = [replica.exec_sqn for replica in live]
        threshold = max(replica._lag_threshold() for replica in live) * lag_slack
        if max(positions) - min(positions) > threshold:
            self._violate(
                f"convergence: live replicas diverge beyond the lag "
                f"threshold ({threshold:.0f}): exec positions {positions}"
            )
        by_position: dict[int, set[int]] = {}
        for replica in live:
            by_position.setdefault(replica.exec_sqn, set()).add(replica.app.digest())
        for position, digests in sorted(by_position.items()):
            if len(digests) > 1:
                self._violate(
                    f"convergence: replicas at exec_sqn {position} hold "
                    f"different application state"
                )


def generate_plan(
    seed: int,
    duration: float,
    n: int,
    warmup: float = 1.0,
    settle: float = 3.0,
    mean_gap: float = 0.8,
) -> FaultSchedule:
    """Derive a randomized, self-healing fault plan from ``seed``.

    The plan is sequential (one fault active at a time, Jepsen-nemesis
    style) so that a quorum is always reachable once the current fault
    lifts: every crash schedules a recovery, every partition a heal, and
    every degradation expires.  No fault starts before ``warmup`` or
    extends into the final ``settle`` seconds, giving the cluster a
    quiet tail to converge in before the safety checks run.
    """
    rng = random.Random(seed)
    schedule = FaultSchedule()
    horizon = duration - settle
    t = warmup
    while True:
        t += rng.uniform(0.5 * mean_gap, 1.5 * mean_gap)
        if t >= horizon:
            break
        remaining = horizon - t
        kind = rng.choices(
            ("crash", "partition", "loss", "slow", "spike"),
            weights=(3, 2, 1, 2, 2),
        )[0]
        if kind == "crash":
            hold = min(rng.uniform(0.8, 2.2), remaining)
            target: Union[int, str] = rng.choice(
                ["leader", "follower", rng.randrange(n)]
            )
            schedule.faults.append(CrashFault(t, target))
            schedule.recover_replica(t + hold)
            t += hold
        elif kind == "partition":
            a, b = rng.sample(range(n), 2)
            hold = min(rng.uniform(0.4, 1.4), remaining)
            schedule.partition_replicas(t, a, b)
            schedule.heal_replicas(t + hold, a, b)
            t += hold
        elif kind == "loss":
            hold = min(rng.uniform(0.3, 1.0), remaining)
            schedule.loss_window(t, hold, rng.uniform(0.05, 0.25))
            t += hold
        elif kind == "slow":
            hold = min(rng.uniform(0.3, 1.2), remaining)
            schedule.slow_replica(t, rng.randrange(n), rng.uniform(2.0, 5.0), hold)
            t += hold
        else:
            hold = min(rng.uniform(0.2, 0.8), remaining)
            schedule.latency_spike(t, rng.randrange(n), rng.uniform(3.0, 8.0), hold)
            t += hold
    return schedule


@dataclass
class ChaosOptions:
    """Everything that parameterizes one chaos run."""

    system: str = "idem"
    clients: int = 20
    duration: float = 30.0
    seed: int = 0
    drain: float = 2.5
    warmup: float = 1.0
    settle: float = 3.0
    mean_gap: float = 0.8
    profile: Optional[ClusterProfile] = None
    # Attach an ObservabilityHub: lifecycle tracing with the fault plan
    # annotated as windows in the trace.  Observer-only; the report's
    # summary() stays byte-identical with this on or off.
    observe: bool = False

    def __post_init__(self) -> None:
        if self.duration <= self.warmup + self.settle:
            raise ValueError(
                f"duration ({self.duration}) must exceed warmup + settle "
                f"({self.warmup} + {self.settle})"
            )


@dataclass
class ChaosReport:
    """The outcome of one chaos run, rendered deterministically."""

    options: ChaosOptions
    plan: list[str]
    executions: int
    exec_positions: list[int]
    app_digests: list[int]
    views: list[int]
    recoveries: int
    state_transfers: int
    view_changes: int
    successes: int
    rejections: int
    timeouts: int
    violations: list[str] = field(default_factory=list)
    # The run's ObservabilityHub when ChaosOptions.observe was set
    # (excluded from summary() to keep it byte-deterministic).
    obs: Optional[object] = None

    @property
    def ok(self) -> bool:
        """Whether every safety invariant held."""
        return not self.violations

    def summary(self) -> str:
        """Deterministic multi-line report: same options => same bytes."""
        options = self.options
        lines = [
            f"chaos run: system={options.system} seed={options.seed} "
            f"duration={options.duration:.1f}s clients={options.clients}",
            f"plan ({len(self.plan)} faults):",
        ]
        lines.extend(f"  {entry}" for entry in self.plan)
        lines.extend(
            [
                "outcome:",
                f"  executions observed: {self.executions}",
                f"  final exec positions: {self.exec_positions}",
                "  app digests: "
                + str([f"{digest & (2**64 - 1):#018x}" for digest in self.app_digests]),
                f"  views: {self.views}",
                f"  recoveries: {self.recoveries}  "
                f"state transfers: {self.state_transfers}  "
                f"view changes: {self.view_changes}",
                f"  clients: successes={self.successes} "
                f"rejections={self.rejections} timeouts={self.timeouts}",
            ]
        )
        if self.ok:
            lines.append("safety: OK (0 violations)")
        else:
            lines.append(f"safety: {len(self.violations)} VIOLATION(S)")
            lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


class ChaosRunner:
    """Runs one seeded chaos campaign against a freshly built cluster."""

    def __init__(self, options: ChaosOptions):
        self.options = options

    def run(self) -> ChaosReport:
        options = self.options
        profile = options.profile or ClusterProfile()
        cluster = build_cluster(
            options.system,
            options.clients,
            seed=options.seed,
            profile=profile,
            stop_time=options.duration,
        )
        checker = SafetyChecker()
        checker.attach(cluster)
        plan = generate_plan(
            options.seed,
            options.duration,
            profile.n,
            warmup=options.warmup,
            settle=options.settle,
            mean_gap=options.mean_gap,
        )
        hub = None
        if options.observe:
            from repro.obs import ObservabilityHub

            horizon = options.duration + options.drain
            hub = ObservabilityHub()
            hub.attach(cluster, horizon=horizon)
            hub.annotate_faults(plan, horizon)
        plan.install(cluster)
        cluster.run_until(options.duration)
        cluster.stop_clients()
        cluster.run_until(options.duration + options.drain)
        violations = checker.finish(cluster)
        live = [replica for replica in cluster.replicas if not replica.halted]
        return ChaosReport(
            options=options,
            plan=plan.describe(),
            executions=checker.executions,
            exec_positions=[replica.exec_sqn for replica in live],
            app_digests=[replica.app.digest() for replica in live],
            views=[replica.view for replica in live],
            recoveries=cluster.recoveries,
            state_transfers=sum(
                replica.stats["state_transfers"] for replica in live
            ),
            view_changes=sum(replica.stats["view_changes"] for replica in live),
            successes=sum(client.successes for client in cluster.clients),
            rejections=sum(client.rejections for client in cluster.clients),
            timeouts=sum(client.timeouts for client in cluster.clients),
            violations=violations,
            obs=hub,
        )


def run_chaos(options: ChaosOptions) -> ChaosReport:
    """Convenience wrapper: run one chaos campaign."""
    return ChaosRunner(options).run()

"""The simulated cluster profile (the "hardware" of an experiment).

Collects every environment parameter that is *not* a protocol knob: the
network latency distribution, the CPU cost model, the workload shape.
The defaults are calibrated so that the 3-replica cluster saturates in
the same regime as the paper's testbed (tens of thousands of requests
per second at around a millisecond with 50 closed-loop clients); see
``tests/test_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.latency import LatencyModel, LogNormalLatency
from repro.protocols.config import fault_tolerance
from repro.workload.ycsb import WORKLOAD_UPDATE_HEAVY, YcsbProfile


@dataclass
class ClusterProfile:
    """Environment parameters shared by all systems in a comparison."""

    n: int = 3
    # Fault threshold; derived from n in __post_init__ when not given
    # explicitly, so ClusterProfile(n=5) scales without a second knob.
    f: int | None = None
    # Network: datacenter-like one-way latencies.
    latency_median: float = 80e-6
    latency_sigma: float = 0.25
    latency_floor: float = 20e-6
    loss_probability: float = 0.0
    # Optional per-node egress link capacity in bytes/second (None = no
    # serialisation delay).  Set to e.g. 125e6 (1 Gbit/s) to expose the
    # leader-link bottleneck of full-request protocols (Section 4.2).
    egress_bandwidth: float | None = None
    # CPU cost model (seconds); see ProtocolConfig for the semantics.
    execution_cost: float = 6e-6
    cost_client_request: float = 8e-6
    cost_message: float = 3e-6
    cost_per_id: float = 0.8e-6
    cost_send: float = 3e-6
    cost_per_byte: float = 1.0e-9
    cost_execution_overhead: float = 5e-6
    cpu_jitter_sigma: float = 0.15
    # A general-purpose BFT library in CFT mode runs a heavier code path
    # than the purpose-built protocols; this factor scales its CPU costs.
    bftsmart_cost_factor: float = 1.3
    # Workload.
    workload: YcsbProfile = field(default_factory=lambda: WORKLOAD_UPDATE_HEAVY)
    # The paper's client-load baseline: 50 closed-loop clients is the
    # saturation point and defines client-load factor 1x (Section 7.3).
    baseline_clients: int = 50

    def __post_init__(self) -> None:
        if self.f is None:
            self.f = fault_tolerance(self.n)

    def latency_model(self) -> LatencyModel:
        """Build the one-way latency model for this profile."""
        return LogNormalLatency(
            median=self.latency_median,
            sigma=self.latency_sigma,
            floor=self.latency_floor,
        )

    def clients_for_load_factor(self, factor: float) -> int:
        """Number of clients representing a client-load factor (1x = 50)."""
        return max(1, round(self.baseline_clients * factor))

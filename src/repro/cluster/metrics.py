"""Client-side measurement for experiments.

All clients of a run report request outcomes into one
:class:`MetricsCollector`; the collector maintains exactly the artefacts
the paper plots: latency summaries and throughput over a measurement
window, reject latency/throughput, and bucketed time series for the
crash timelines.  End-to-end latency is measured the way the paper does
(Section 7.3): from the client sending its request until it either
receives a usable reply or abandons the operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.monitor import (
    CounterSeries,
    IntervalRecorder,
    LatencyRecorder,
    SummaryStats,
)


class MetricsCollector:
    """Aggregates request outcomes from all clients of one run."""

    def __init__(
        self,
        window_start: float = 0.0,
        window_end: float = float("inf"),
        bucket_width: float = 0.25,
    ):
        self.window_start = window_start
        self.window_end = window_end
        # Successful operations.
        self.reply_latency = LatencyRecorder(window_start, window_end)
        self.reply_counter = CounterSeries(bucket_width)
        self._reply_latency_sums: dict[int, float] = {}
        # Rejected (aborted) operations.
        self.reject_latency = LatencyRecorder(window_start, window_end)
        self.reject_counter = CounterSeries(bucket_width)
        self._reject_latency_sums: dict[int, float] = {}
        self.reject_gaps = IntervalRecorder()
        # Timeouts.
        self.timeouts = 0
        self.timeout_counter = CounterSeries(bucket_width)
        self.timeout_latency = LatencyRecorder(window_start, window_end)
        self.bucket_width = bucket_width
        self.first_reject_time: Optional[float] = None

    # -- recording ---------------------------------------------------

    def record_success(self, time: float, latency: float) -> None:
        """A client received a usable reply ``latency`` seconds after sending."""
        self.reply_latency.record(time, latency)
        self.reply_counter.record(time)
        bucket = int(time / self.bucket_width)
        self._reply_latency_sums[bucket] = (
            self._reply_latency_sums.get(bucket, 0.0) + latency
        )

    def record_reject(self, time: float, latency: float) -> None:
        """A client abandoned an operation due to rejection."""
        self.reject_latency.record(time, latency)
        self.reject_counter.record(time)
        bucket = int(time / self.bucket_width)
        self._reject_latency_sums[bucket] = (
            self._reject_latency_sums.get(bucket, 0.0) + latency
        )
        if self.first_reject_time is None:
            self.first_reject_time = time

    def note_reject_message(self, time: float) -> None:
        """Any REJECT notification reached any client (for downtime gaps)."""
        self.reject_gaps.record(time)

    def record_timeout(self, time: float, latency: float = 0.0) -> None:
        """A client gave up on an operation without reply or rejection.

        ``latency`` is the elapsed time since the operation's first
        send, so timeout tails show up in summaries like success and
        reject latencies do (for a no-retry client it is simply the
        request timeout)."""
        self.timeouts += 1
        self.timeout_counter.record(time)
        self.timeout_latency.record(time, latency)

    # -- summaries ---------------------------------------------------

    def throughput(self) -> float:
        """Successful requests per second over the measurement window."""
        return self.reply_counter.rate_between(self.window_start, self.window_end)

    def reject_throughput(self) -> float:
        """Aborted (rejected) operations per second over the window."""
        return self.reject_counter.rate_between(self.window_start, self.window_end)

    def latency_summary(self) -> SummaryStats:
        """Latency statistics of successful operations in the window."""
        return self.reply_latency.summary()

    def reject_latency_summary(self) -> SummaryStats:
        """Latency statistics of rejected operations in the window."""
        return self.reject_latency.summary()

    def timeout_latency_summary(self) -> SummaryStats:
        """Latency statistics of timed-out operations in the window."""
        return self.timeout_latency.summary()

    def latency_timeline(self) -> list[tuple[float, float]]:
        """Mean reply latency per time bucket (crash-timeline plots)."""
        return self._timeline(self._reply_latency_sums, self.reply_counter)

    def reject_latency_timeline(self) -> list[tuple[float, float]]:
        """Mean reject latency per time bucket (Figure 10d)."""
        return self._timeline(self._reject_latency_sums, self.reject_counter)

    def _timeline(
        self, sums: dict[int, float], counter: CounterSeries
    ) -> list[tuple[float, float]]:
        result = []
        for bucket in sorted(sums):
            count = counter.count_in_bucket(bucket)
            if count:
                result.append((bucket * self.bucket_width, sums[bucket] / count))
        return result


@dataclass
class ExperimentResult:
    """The outcome of one run, as consumed by experiments and benches."""

    system: str
    clients: int
    seed: int
    duration: float
    warmup: float
    throughput: float
    latency: SummaryStats
    reject_throughput: float
    reject_latency: SummaryStats
    timeouts: int
    traffic: dict[str, int]
    replica_stats: list[dict[str, float]] = field(default_factory=list)
    metrics: Optional[MetricsCollector] = None
    # Safety-invariant violations observed by a SafetyChecker; None when
    # the run was not safety-checked (RunSpec.safety left off).
    safety_violations: Optional[list[str]] = None
    # The ObservabilityHub of the run (repro.obs) when tracing was on.
    # Kept out of replica_stats so that every field above is identical
    # with tracing on or off (the observer-only invariant).
    obs: Optional[object] = None
    # Drift-detector findings (repro.obs.detect) as JSON-safe dicts when
    # the run was probed (RunSpec.probes); None otherwise.  Like obs,
    # not part of the measured fields — tools/overhead_guard.py checks
    # those stay byte-identical whether or not probes ran.
    findings: Optional[list] = None
    # Simulator-side execution profile of the run: dispatched_events,
    # peak_heap and drained_tombstones from the event loop.  All three
    # are deterministic for a given spec; campaign workers pair them
    # with wall time to build per-job performance profiles.
    sim_stats: Optional[dict] = None
    # Aggregated client-side resilience counters (commands, sends,
    # retries, hedges, give-ups, load_amplification; plus arrivals and
    # shed_arrivals for open-loop runs) from Cluster.client_stats().
    client_stats: Optional[dict] = None

    @property
    def load_amplification(self) -> float:
        """Requests put on the wire per distinct command (1.0 = no
        retries/retransmits/hedges ever fired)."""
        if not self.client_stats:
            return 1.0
        return self.client_stats.get("load_amplification", 1.0)

    @property
    def latency_ms(self) -> float:
        """Mean reply latency in milliseconds."""
        return self.latency.mean * 1e3

    @property
    def throughput_kops(self) -> float:
        """Successful throughput in thousands of requests per second."""
        return self.throughput / 1e3

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.system}: {self.clients} clients -> "
            f"{self.throughput_kops:.1f}k req/s @ {self.latency_ms:.2f} ms "
            f"(p99 {self.latency.p99 * 1e3:.2f} ms, "
            f"p99.9 {self.latency.p999 * 1e3:.2f} ms, "
            f"rejects {self.reject_throughput:.0f}/s)"
        )

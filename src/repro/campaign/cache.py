"""Content-addressed result cache for campaign jobs.

Results live under ``benchmarks/results/cache/`` (configurable), one
entry per job key:

* ``<key[:2]>/<key>.pkl`` — the pickled result object, and
* ``<key[:2]>/<key>.json`` — a small human-readable sidecar (label,
  kind, version) for inspecting what a hash refers to.

The key is computed by :mod:`repro.campaign.plan` from the canonicalised
job payload plus the ``repro`` version and cache schema, so the whole
cache is invalidated simply by bumping either — or by deleting the
directory (see ``docs/CAMPAIGNS.md``).

Because every job is a deterministic function of its payload, a cache
hit must equal a fresh run.  :func:`result_fingerprint` gives the
canonical digest used to *check* that property: the campaign's
spot-check verification mode re-runs a deterministic sample of cache
hits and compares fingerprints.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import repro
from repro.campaign.plan import CACHE_SCHEMA, Job, canonical_json
from repro.experiments.io import to_jsonable

DEFAULT_CACHE_DIR = Path("benchmarks") / "results" / "cache"

# ``to_jsonable`` falls back to repr() for non-dataclass attachments
# (e.g. a kept MetricsCollector); mask the memory addresses so the
# fingerprint only reflects values, never object identity.
_ADDRESS = re.compile(r" object at 0x[0-9a-fA-F]+")

#: Sentinel returned by :meth:`ResultCache.load` when a key is absent.
MISS = object()


def result_fingerprint(result: Any) -> str:
    """Canonical digest of a job result's observable values."""
    text = _ADDRESS.sub(" object", canonical_json(to_jsonable(result)))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def should_verify(key: str, fraction: float) -> bool:
    """Deterministic sampling: verify roughly ``fraction`` of cache hits.

    Derived from the job key itself, so the same jobs are spot-checked
    on every machine — failures are reproducible.
    """
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    return int(key[:8], 16) < fraction * 0x100000000


@dataclass
class CacheStats:
    """Counters one cache accumulates over a campaign."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0


@dataclass
class ResultCache:
    """A content-addressed pickle store, keyed by job hash."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def load(self, key: str) -> Any:
        """The cached result for ``key``, or :data:`MISS`.

        Corrupt entries (truncated pickles, unreadable files) are
        dropped and counted as misses — the job simply re-runs.
        """
        path = self._path(key)
        try:
            with path.open("rb") as stream:
                result = pickle.load(stream)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.evict(key)
            return MISS
        self.stats.hits += 1
        return result

    def store(
        self,
        key: str,
        result: Any,
        job: Optional[Job] = None,
        profile: Optional[dict[str, Any]] = None,
    ) -> None:
        """Persist one result (and a human-readable sidecar).

        ``profile`` is the job's performance profile (wall time,
        dispatched events, …); it rides in the sidecar so later
        campaigns can surface the cost of cached jobs without
        re-running them (``campaign --report --slowest K``).
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".pkl.tmp")
        with tmp.open("wb") as stream:
            pickle.dump(result, stream, protocol=4)
        tmp.replace(path)
        meta = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "fingerprint": result_fingerprint(result),
        }
        if job is not None:
            meta["kind"] = job.kind
            meta["label"] = job.label
        if profile is not None:
            meta["profile"] = profile
        self._meta_path(key).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        self.stats.stores += 1

    def load_profile(self, key: str) -> Optional[dict[str, Any]]:
        """The performance profile recorded when ``key`` was executed.

        Read from the JSON sidecar; ``None`` when the entry predates
        profiling or the sidecar is unreadable.
        """
        try:
            meta = json.loads(self._meta_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        profile = meta.get("profile")
        return profile if isinstance(profile, dict) else None

    def size(self) -> tuple[int, int]:
        """Current on-disk footprint: ``(result entries, total bytes)``.

        Bytes cover both the pickled results and their JSON sidecars —
        what deleting the directory would actually reclaim.
        """
        entries = 0
        total_bytes = 0
        if not self.root.exists():
            return entries, total_bytes
        for path in self.root.glob("*/*"):
            try:
                size = path.stat().st_size
            except OSError:
                continue  # evicted concurrently
            total_bytes += size
            if path.suffix == ".pkl":
                entries += 1
        return entries, total_bytes

    def evict(self, key: str) -> None:
        """Remove one entry (stale or corrupt)."""
        for path in (self._path(key), self._meta_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def purge(self) -> int:
        """Drop every entry; returns how many results were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
        return removed

"""``repro.campaign`` — parallel experiment campaigns with a
content-addressed result cache and a baseline regression gate.

Quickstart::

    from repro.campaign import CampaignOptions, run_campaign

    result = run_campaign(CampaignOptions(experiments=["fig2", "fig6"], jobs=4))
    for outcome in result.outcomes:
        print(outcome.text)

Or from the command line::

    repro-experiments campaign --jobs 4                # all figures/tables
    repro-experiments campaign --check                 # gate against baselines
    repro-experiments campaign --update-baselines      # refresh BENCH_*.json

See ``docs/CAMPAIGNS.md`` for the planner/cache/baseline model.
"""

from repro.campaign.baseline import (
    BaselineEntry,
    BaselineReport,
    check_baselines,
    extract_headlines,
    load_baseline,
    write_baseline,
)
from repro.campaign.cache import MISS, ResultCache, result_fingerprint, should_verify
from repro.campaign.gc import GcReport, collect_garbage, record_run
from repro.campaign.engine import (
    CachingExecutor,
    CampaignExecutor,
    CampaignOptions,
    CampaignResult,
    ExperimentOutcome,
    resolve_experiment_ids,
    run_campaign,
)
from repro.campaign.plan import (
    CACHE_SCHEMA,
    Job,
    UnplannableSpec,
    job_key,
    payload_to_spec,
    plan_campaign,
    plan_experiment,
    spec_to_payload,
)
from repro.campaign.pool import (
    CacheVerificationError,
    ExecutionStats,
    execute_jobs,
    execute_payload,
    job_profile,
)
from repro.campaign.report import (
    render_shards,
    render_slowest,
    render_summary,
    report_jsonable,
    write_report,
)
from repro.campaign.shard import (
    SHARD_SEED_STRIDE,
    merge_shard_groups,
    merge_shard_results,
    run_sharded,
    shard_campaign_jobs,
    shard_payloads,
    shardable_reason,
)

__all__ = [
    "BaselineEntry",
    "BaselineReport",
    "CACHE_SCHEMA",
    "CacheVerificationError",
    "CachingExecutor",
    "CampaignExecutor",
    "CampaignOptions",
    "CampaignResult",
    "ExecutionStats",
    "ExperimentOutcome",
    "GcReport",
    "Job",
    "MISS",
    "ResultCache",
    "UnplannableSpec",
    "check_baselines",
    "collect_garbage",
    "execute_jobs",
    "execute_payload",
    "extract_headlines",
    "job_key",
    "job_profile",
    "load_baseline",
    "payload_to_spec",
    "plan_campaign",
    "plan_experiment",
    "SHARD_SEED_STRIDE",
    "merge_shard_groups",
    "merge_shard_results",
    "record_run",
    "render_shards",
    "render_slowest",
    "render_summary",
    "report_jsonable",
    "resolve_experiment_ids",
    "result_fingerprint",
    "run_campaign",
    "run_sharded",
    "shard_campaign_jobs",
    "shard_payloads",
    "shardable_reason",
    "should_verify",
    "spec_to_payload",
    "write_baseline",
    "write_report",
]

"""Campaign reporting: the stderr summary and the JSON artifact.

The rendered *experiment* outputs (what goes to stdout) are fully
deterministic — no wall-clock content — so two campaign runs with the
same settings can be diffed byte-for-byte (the CI smoke job does).
Everything timing- or machine-dependent lives here instead: the stderr
summary and the machine-readable report written by ``--report``, which
CI parses for the cache-hit-rate assertion and uploads as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.campaign.engine import CampaignOptions, CampaignResult


def _format_bytes(size: int) -> str:
    """Human-readable byte count (binary units)."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{int(size)} B"


def render_summary(result: CampaignResult) -> str:
    """Human-readable campaign summary (stderr; not byte-stable)."""
    stats = result.stats
    lines = [
        "Campaign summary:",
        f"  experiments : {', '.join(o.experiment_id for o in result.outcomes)}",
        f"  jobs        : {stats.planned} planned, {stats.unique} distinct",
        f"  cache       : {stats.cache_hits} hit(s), {stats.executed} executed, "
        f"{stats.stored} stored ({100 * stats.hit_rate:.0f}% hit rate)",
        f"  workers     : {stats.workers}"
        + (" (pool unavailable; ran serially)" if stats.pool_fallback else ""),
    ]
    if result.options.shards > 1:
        lines.append(
            f"  shards      : {result.options.shards} cohort(s) per shardable run"
        )
    if result.options.cache_dir is not None:
        lines.insert(
            4,
            f"  cache size  : {stats.cache_entries} entr"
            f"{'y' if stats.cache_entries == 1 else 'ies'}, "
            f"{_format_bytes(stats.cache_bytes)} on disk",
        )
    if stats.verified or stats.verify_failures:
        lines.append(
            f"  verified    : {stats.verified} spot-check(s), "
            f"{stats.verify_failures} failure(s)"
        )
    if stats.inline_misses:
        lines.append(
            f"  plan drift  : {stats.inline_misses} job(s) ran inline "
            "(not covered by the plan)"
        )
    lines.append(
        f"  wall time   : plan {stats.plan_seconds:.2f}s, "
        f"execute {stats.execute_seconds:.2f}s, "
        f"aggregate {stats.aggregate_seconds:.2f}s"
    )
    if result.baseline_paths:
        lines.append(
            "  baselines   : wrote "
            + ", ".join(path.name for path in result.baseline_paths)
        )
    finding_lines = render_findings(result)
    if finding_lines:
        lines.append(finding_lines)
    return "\n".join(lines)


def render_findings(result: CampaignResult) -> str:
    """Drift-detector findings of probed jobs, one line each (stderr).

    Empty string when no probed job produced findings — the healthy
    case prints nothing.
    """
    lines: list[str] = []
    total = 0
    for profile in result.stats.job_profiles:
        for finding in profile.get("findings") or ():
            total += 1
            lines.append(
                f"    {profile['label']}: [{finding['rule']}] "
                f"{finding['node']} "
                f"{finding['start']:.2f}-{finding['end']:.2f}s — "
                f"{finding['summary']}"
            )
    if not lines:
        return ""
    return f"  drift       : {total} finding(s) from probed jobs\n" + "\n".join(lines)


def render_slowest(result: CampaignResult, k: int) -> str:
    """The top-``k`` most expensive jobs of the campaign (stderr).

    Profiles come from :func:`repro.campaign.pool.job_profile`: fresh
    runs are timed in the worker, cache hits report the wall time
    recorded in their sidecar when they originally executed.
    """
    profiles = [
        profile
        for profile in result.stats.job_profiles
        if profile.get("wall_seconds") is not None
    ]
    profiles.sort(key=lambda profile: profile["wall_seconds"], reverse=True)
    top = profiles[:k]
    lines = [f"Slowest {len(top)} of {len(profiles)} profiled job(s):"]
    if not top:
        lines.append("  (no job profiles recorded)")
        return "\n".join(lines)
    lines.append("  wall      events     ev/s        job")
    for profile in top:
        dispatched = profile.get("dispatched_events")
        rate = profile.get("events_per_sec")
        events_text = f"{dispatched:>9,}" if dispatched is not None else "        -"
        rate_text = f"{rate:>10,.0f}" if rate else "         -"
        cached_text = " (cached)" if profile.get("cached") else ""
        lines.append(
            f"  {profile['wall_seconds']:7.2f}s {events_text}  {rate_text}  "
            f"{profile['label']}{cached_text}"
        )
    return "\n".join(lines)


def render_shards(result: CampaignResult) -> str:
    """Per-shard profile rows, grouped by base run (stderr).

    Shard jobs carry ``<base label>#shard<i>of<K>`` labels (see
    :func:`repro.campaign.shard.shard_job`); this groups their profiles
    back under the base run so a skewed cohort — one shard much slower
    than its siblings — is visible at a glance.  Empty string when the
    campaign ran unsharded.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for profile in result.stats.job_profiles:
        label = profile.get("label", "")
        base, separator, _ = label.rpartition("#shard")
        if separator:
            groups.setdefault(base, []).append(profile)
    if not groups:
        return ""
    lines = [f"Shard profiles for {len(groups)} sharded run(s):"]
    for base in sorted(groups):
        lines.append(f"  {base}")
        lines.append("    shard        wall      events     ev/s")
        for profile in sorted(groups[base], key=lambda p: p["label"]):
            shard_text = profile["label"].rpartition("#")[2]
            dispatched = profile.get("dispatched_events")
            rate = profile.get("events_per_sec")
            events_text = f"{dispatched:>9,}" if dispatched is not None else "        -"
            rate_text = f"{rate:>10,.0f}" if rate else "         -"
            cached_text = " (cached)" if profile.get("cached") else ""
            lines.append(
                f"    {shard_text:<10} {profile['wall_seconds']:6.2f}s "
                f"{events_text}  {rate_text}{cached_text}"
            )
    return "\n".join(lines)


def report_jsonable(result: CampaignResult) -> dict[str, Any]:
    """The machine-readable campaign report (CI artifact)."""
    options: CampaignOptions = result.options
    stats = result.stats
    return {
        "experiments": [o.experiment_id for o in result.outcomes],
        "settings": options.settings(),
        "stats": {
            "planned": stats.planned,
            "unique": stats.unique,
            "cache_hits": stats.cache_hits,
            "hit_rate": stats.hit_rate,
            "executed": stats.executed,
            "stored": stats.stored,
            "verified": stats.verified,
            "verify_failures": stats.verify_failures,
            "inline_misses": stats.inline_misses,
            "workers": stats.workers,
            "shards": options.shards,
            "pool_fallback": stats.pool_fallback,
            "cache_entries": stats.cache_entries,
            "cache_bytes": stats.cache_bytes,
            **stats.merge_timings(),
        },
        "job_profiles": stats.job_profiles,
        "headlines": result.headlines,
        "baseline": (
            None
            if result.baseline_report is None
            else result.baseline_report.to_jsonable()
        ),
        "ok": result.ok,
    }


def write_report(path: Path, result: CampaignResult) -> Path:
    """Write the JSON report for ``--report PATH``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report_jsonable(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path

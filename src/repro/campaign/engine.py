"""The campaign engine: plan → execute → aggregate → gate.

A campaign run has four phases:

1. **Plan** — expand the experiment selection into independent jobs
   (:mod:`repro.campaign.plan`).
2. **Execute** — resolve each distinct job against the content-addressed
   cache, fan the misses out over the process pool, spot-verify a sample
   of hits (:mod:`repro.campaign.pool` / :mod:`repro.campaign.cache`).
3. **Aggregate** — run each experiment's *unchanged serial* ``run()``
   with a :class:`CampaignExecutor` installed, so every simulation it
   asks for is served from the pre-computed result map.  Output is
   therefore byte-identical to the serial path by construction.
4. **Gate** — extract headline metrics and compare them against the
   committed ``BENCH_*.json`` baselines (:mod:`repro.campaign.baseline`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.campaign import baseline as baseline_mod
from repro.campaign.cache import (
    DEFAULT_CACHE_DIR,
    MISS,
    ResultCache,
)
from repro.campaign.gc import record_run
from repro.campaign.plan import (
    KIND_CELL,
    KIND_SIM,
    UnplannableSpec,
    job_key,
    plan_campaign,
    spec_to_payload,
)
from repro.campaign.pool import ExecutionStats, execute_jobs, execute_payload
from repro.cluster.metrics import ExperimentResult
from repro.cluster.runner import RunSpec, run_experiment
from repro.experiments import common
from repro.experiments.registry import EXPERIMENTS, get_experiment


class CampaignExecutor:
    """Serves experiment jobs from a pre-computed result map.

    Installed via :func:`repro.experiments.common.use_executor` for the
    aggregation phase.  A request the plan did not cover (plan drift, or
    a spec that cannot be serialised) runs inline and is counted in
    ``stats.inline_misses`` so tests can assert full plan coverage.
    """

    def __init__(
        self,
        results: dict[str, Any],
        stats: ExecutionStats,
        cache: Optional[ResultCache] = None,
    ):
        self.results = results
        self.stats = stats
        self.cache = cache

    def _resolve(self, kind: str, payload: dict[str, Any], fallback) -> Any:
        key = job_key(kind, payload)
        if key in self.results:
            return self.results[key]
        result = fallback()
        self.stats.inline_misses += 1
        self.results[key] = result
        return result

    def run_spec(self, spec: RunSpec) -> ExperimentResult:
        try:
            payload = spec_to_payload(spec)
        except UnplannableSpec:
            self.stats.inline_misses += 1
            return run_experiment(spec)
        return self._resolve(KIND_SIM, payload, lambda: run_experiment(spec))

    def run_cell(self, kwargs: dict[str, Any]) -> Any:
        payload = dict(kwargs)
        return self._resolve(
            KIND_CELL, payload, lambda: execute_payload(KIND_CELL, payload)
        )


class CachingExecutor:
    """Cache-through executor (no pre-plan): check the disk cache, run
    on miss, store.  Used to make ad-hoc reruns (e.g. the benchmark
    suite with ``REPRO_BENCH_CACHE=1``) incremental without a campaign.
    """

    def __init__(self, cache: ResultCache):
        self.cache = cache

    def _through(self, kind: str, payload: dict[str, Any]) -> Any:
        key = job_key(kind, payload)
        cached = self.cache.load(key)
        if cached is not MISS:
            return cached
        result = execute_payload(kind, payload)
        self.cache.store(key, result)
        return result

    def run_spec(self, spec: RunSpec) -> ExperimentResult:
        try:
            payload = spec_to_payload(spec)
        except UnplannableSpec:
            return run_experiment(spec)
        return self._through(KIND_SIM, payload)

    def run_cell(self, kwargs: dict[str, Any]) -> Any:
        return self._through(KIND_CELL, dict(kwargs))


@dataclass
class CampaignOptions:
    """Everything a campaign run needs."""

    experiments: list[str] = field(default_factory=lambda: list(EXPERIMENTS))
    quick: bool = False
    runs: Optional[int] = None
    duration: Optional[float] = None
    seed0: int = 0
    jobs: int = 0  # 0 = one worker per CPU
    # Slice every shardable sim job into this many independent cohorts
    # (repro.campaign.shard); 1 = unsharded.  Shard results merge back
    # under the base job's key, so aggregation is oblivious to this.
    # Deliberately NOT part of settings(): the baseline fingerprint
    # tracks what was computed, and sharded campaigns compute a
    # different (cohort) deployment model gated by its own tests.
    shards: int = 1
    cache_dir: Optional[Path] = DEFAULT_CACHE_DIR
    verify_fraction: float = 0.0
    check: bool = False
    update_baselines: bool = False
    baseline_dir: Path = baseline_mod.DEFAULT_BASELINE_DIR
    echo: Optional[Callable[[str], None]] = None  # progress sink (stderr)

    def resolved_jobs(self) -> int:
        if self.jobs and self.jobs > 0:
            return self.jobs
        return os.cpu_count() or 1

    def settings(self) -> dict[str, Any]:
        """The settings fingerprint recorded in baselines and reports."""
        return {
            "quick": self.quick,
            "runs": self.runs,
            "duration": self.duration,
            "seed0": self.seed0,
        }


@dataclass
class ExperimentOutcome:
    """One experiment's aggregated campaign output."""

    experiment_id: str
    data: Any
    text: str
    headlines: dict[str, float]


@dataclass
class CampaignResult:
    """The outcome of one whole campaign."""

    options: CampaignOptions
    outcomes: list[ExperimentOutcome]
    stats: ExecutionStats
    baseline_report: Optional[baseline_mod.BaselineReport] = None
    baseline_paths: list[Path] = field(default_factory=list)

    @property
    def headlines(self) -> dict[str, dict[str, float]]:
        return {o.experiment_id: o.headlines for o in self.outcomes}

    @property
    def ok(self) -> bool:
        if self.stats.verify_failures:
            return False
        if self.baseline_report is not None and not self.baseline_report.ok:
            return False
        return True

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def resolve_experiment_ids(selection: list[str]) -> list[str]:
    """Expand/validate a selection; ``["all"]`` means every experiment."""
    if not selection or selection == ["all"]:
        return list(EXPERIMENTS)
    for experiment_id in selection:
        get_experiment(experiment_id)  # raises KeyError with a clear message
    return list(dict.fromkeys(selection))


def run_campaign(options: CampaignOptions) -> CampaignResult:
    """Run one campaign end to end (no printing; see ``repro.cli``)."""
    echo = options.echo or (lambda message: None)
    ids = resolve_experiment_ids(options.experiments)

    plan_started = time.perf_counter()
    jobs = plan_campaign(
        ids,
        quick=options.quick,
        runs=options.runs,
        seed0=options.seed0,
        duration=options.duration,
    )
    shard_groups: dict[str, Any] = {}
    if options.shards > 1:
        from repro.campaign.shard import shard_campaign_jobs

        jobs, shard_groups = shard_campaign_jobs(jobs, options.shards)
    plan_seconds = time.perf_counter() - plan_started
    echo(
        f"campaign: planned {len(jobs)} job(s) across {len(ids)} experiment(s) "
        f"({len({job.key for job in jobs})} distinct)"
    )
    if shard_groups:
        echo(
            f"campaign: sharded {len(shard_groups)} run(s) into "
            f"{options.shards} cohort(s) each"
        )

    cache = ResultCache(options.cache_dir) if options.cache_dir is not None else None
    results, stats = execute_jobs(
        jobs,
        workers=options.resolved_jobs(),
        cache=cache,
        verify_fraction=options.verify_fraction,
        echo=echo,
    )
    stats.plan_seconds = plan_seconds
    if shard_groups:
        from repro.campaign.shard import merge_shard_groups

        # Deterministic reducer: consumes cohort results in shard order,
        # so the merged result is independent of worker count and
        # completion order.  Base keys now resolve like unsharded runs.
        merge_shard_groups(results, shard_groups)
    if cache is not None:
        # Manifest for --gc: which keys this campaign referenced.
        record_run(cache.root, [job.key for job in jobs])
        stats.cache_entries, stats.cache_bytes = cache.size()

    aggregate_started = time.perf_counter()
    outcomes: list[ExperimentOutcome] = []
    executor = CampaignExecutor(results, stats, cache)
    with common.use_executor(executor):
        for experiment_id in ids:
            module = get_experiment(experiment_id)
            data = module.run(
                quick=options.quick,
                runs=options.runs,
                seed0=options.seed0,
                duration=options.duration,
            )
            outcomes.append(
                ExperimentOutcome(
                    experiment_id=experiment_id,
                    data=data,
                    text=module.render(data),
                    headlines=baseline_mod.extract_headlines(experiment_id, data),
                )
            )
    stats.aggregate_seconds = time.perf_counter() - aggregate_started

    result = CampaignResult(options=options, outcomes=outcomes, stats=stats)
    if options.update_baselines:
        for outcome in outcomes:
            if not outcome.headlines:
                continue
            result.baseline_paths.append(
                baseline_mod.write_baseline(
                    options.baseline_dir,
                    outcome.experiment_id,
                    outcome.headlines,
                    options.settings(),
                )
            )
    if options.check:
        result.baseline_report = baseline_mod.check_baselines(
            options.baseline_dir, result.headlines, options.settings()
        )
    return result

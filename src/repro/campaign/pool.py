"""Parallel job execution over a spawn-safe process pool.

Jobs are deduplicated by content-addressed key, resolved against the
disk cache, and the remaining misses fan out over a
``multiprocessing``-``spawn`` process pool (workers import ``repro``
fresh from the job payload — no state is inherited from the parent
beyond ``sys.path``).  The merge is *deterministic by construction*:
results land in a dict keyed by job hash, and the experiments'
unchanged serial aggregation code consumes them in its own order — so
campaign output is byte-identical regardless of scheduling order or
worker count.

If the platform cannot provide a process pool (sandboxes without
semaphores, 1-CPU containers where it is pointless), execution falls
back to in-process serial with a note on ``echo`` — results are
identical either way.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Optional

from repro.campaign.cache import MISS, ResultCache, result_fingerprint, should_verify
from repro.campaign.plan import KIND_CELL, KIND_SHARD, KIND_SIM, Job, payload_to_spec


class CacheVerificationError(RuntimeError):
    """A cached result differed from a fresh run of the same job."""


def execute_payload(kind: str, payload: dict[str, Any]) -> Any:
    """Run one job payload to completion (also the worker entry point)."""
    if kind == KIND_SIM or kind == KIND_SHARD:
        from repro.cluster.runner import run_experiment

        # A shard payload is a sim payload plus a "shard" descriptor;
        # payload_to_spec reads its fixed key set, so the descriptor
        # only matters for the job key (shard-aware caching) and for
        # the merge bookkeeping in repro.campaign.shard.
        result = run_experiment(payload_to_spec(payload))
        # Probed runs carry a hub only as scaffolding for the detectors,
        # which already ran (result.findings); drop it so pickled cache
        # entries stay small and free of live simulation objects.
        if result.obs is not None:
            result.obs = None
        return result
    if kind == KIND_CELL:
        from repro.experiments.tab1_overhead import measure_cell

        return measure_cell(**payload)
    raise ValueError(f"unknown job kind {kind!r}")


def _pool_worker(item: tuple[str, str, dict[str, Any]]) -> tuple[str, Any, float]:
    key, kind, payload = item
    started = time.perf_counter()
    result = execute_payload(kind, payload)
    return key, result, time.perf_counter() - started


def job_profile(
    job: Job, result: Any, wall_seconds: float, cached: bool = False
) -> dict[str, Any]:
    """Performance profile of one executed job.

    Pairs worker wall time with the simulator's own counters
    (``ExperimentResult.sim_stats``); written into the cache sidecar so
    the cost survives for later ``--slowest`` reports.  Non-simulation
    jobs (tab1 cells) profile wall time only.
    """
    sim = getattr(result, "sim_stats", None) or {}
    dispatched = sim.get("dispatched_events")
    events_per_sec = None
    if dispatched and wall_seconds > 0:
        events_per_sec = dispatched / wall_seconds
    profile = {
        "key": job.key,
        "label": job.label,
        "kind": job.kind,
        "wall_seconds": wall_seconds,
        "dispatched_events": dispatched,
        "events_per_sec": events_per_sec,
        "peak_heap": sim.get("peak_heap"),
        "drained_tombstones": sim.get("drained_tombstones"),
        "cached": cached,
    }
    findings = getattr(result, "findings", None)
    if findings is not None:
        # Probed run: drift-detector findings ride the sidecar so
        # `campaign --report` can surface them for cache hits too.
        profile["findings"] = findings
    return profile


@dataclass
class ExecutionStats:
    """What happened while resolving a campaign's jobs."""

    planned: int = 0  # jobs requested by the plan (with duplicates)
    unique: int = 0  # distinct job keys
    cache_hits: int = 0
    executed: int = 0  # fresh runs (pool or serial)
    stored: int = 0  # results written to the cache
    verified: int = 0  # cache hits re-run by the spot checker
    verify_failures: int = 0
    inline_misses: int = 0  # aggregation-time runs the plan did not cover
    workers: int = 1  # pool width actually used (1 = serial)
    pool_fallback: bool = False  # pool unavailable, ran serial instead
    cache_entries: int = 0  # results on disk after the run
    cache_bytes: int = 0  # on-disk footprint (results + sidecars)
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    # Per-job performance profiles (see job_profile): fresh runs are
    # timed directly, cache hits carry the profile recorded in their
    # sidecar when they originally executed.
    job_profiles: list[dict[str, Any]] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Cache hits as a fraction of distinct jobs."""
        return self.cache_hits / self.unique if self.unique else 0.0

    def merge_timings(self) -> dict[str, float]:
        return {
            "plan_seconds": self.plan_seconds,
            "execute_seconds": self.execute_seconds,
            "aggregate_seconds": self.aggregate_seconds,
        }


def execute_jobs(
    jobs: list[Job],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    verify_fraction: float = 0.0,
    echo: Optional[Callable[[str], None]] = None,
) -> tuple[dict[str, Any], ExecutionStats]:
    """Resolve every job to a result; returns ``(results by key, stats)``.

    ``verify_fraction`` > 0 re-runs a deterministic sample of cache hits
    and raises :class:`CacheVerificationError` on any divergence (the
    stale entry is evicted first, so the next campaign self-heals).
    """
    echo = echo or (lambda message: None)
    stats = ExecutionStats(planned=len(jobs), workers=max(1, workers))
    started = time.perf_counter()

    # Deduplicate by key, keeping first-seen order (the plan's order).
    unique: dict[str, Job] = {}
    for job in jobs:
        unique.setdefault(job.key, job)
    stats.unique = len(unique)

    results: dict[str, Any] = {}
    pending: list[Job] = []
    for key, job in unique.items():
        cached = cache.load(key) if cache is not None else MISS
        if cached is MISS:
            pending.append(job)
        else:
            results[key] = cached
            stats.cache_hits += 1
            profile = cache.load_profile(key)
            if profile is not None:
                stats.job_profiles.append({**profile, "cached": True})

    _verify_sample(results, unique, cache, verify_fraction, stats, echo)

    if pending:
        echo(
            f"campaign: executing {len(pending)} job(s) "
            f"({stats.cache_hits} cached) on {stats.workers} worker(s)"
        )
        executed = _execute_pending(pending, stats, echo)
        for job in pending:
            result, wall_seconds = executed[job.key]
            results[job.key] = result
            profile = job_profile(job, result, wall_seconds)
            stats.job_profiles.append(profile)
            if cache is not None:
                cache.store(job.key, result, job, profile=profile)
                stats.stored += 1
    stats.execute_seconds = time.perf_counter() - started
    return results, stats


def _execute_pending(
    pending: list[Job], stats: ExecutionStats, echo: Callable[[str], None]
) -> dict[str, tuple[Any, float]]:
    """Run the cache misses, in parallel when possible.

    Returns ``{job key: (result, wall seconds)}``.
    """
    if stats.workers > 1 and len(pending) > 1:
        try:
            return _execute_parallel(pending, stats, echo)
        except (BrokenProcessPool, OSError, PermissionError) as error:
            stats.pool_fallback = True
            echo(f"campaign: process pool unavailable ({error}); running serially")
    return {job.key: _execute_one(job, stats) for job in pending}


def _execute_one(job: Job, stats: ExecutionStats) -> tuple[Any, float]:
    started = time.perf_counter()
    result = execute_payload(job.kind, dict(job.payload))
    wall_seconds = time.perf_counter() - started
    stats.executed += 1
    return result, wall_seconds


def _execute_parallel(
    pending: list[Job], stats: ExecutionStats, echo: Callable[[str], None]
) -> dict[str, tuple[Any, float]]:
    """Fan the pending jobs out over a spawn pool; keyed merge."""
    from repro.sim.cores import get_default_core, set_default_core

    items = [(job.key, job.kind, dict(job.payload)) for job in pending]
    by_key = {job.key: job for job in pending}
    executed: dict[str, tuple[Any, float]] = {}
    context = get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(stats.workers, len(items)),
        mp_context=context,
        # Spawn workers import repro fresh, so the parent's event-core
        # choice (--sim-core / REPRO_SIM_CORE) must be re-applied in
        # each worker.  Results are core-independent by contract; this
        # only decides how fast the workers run.
        initializer=set_default_core,
        initargs=(get_default_core(),),
    ) as pool:
        futures = {pool.submit(_pool_worker, item) for item in items}
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                key, result, wall_seconds = future.result()
                executed[key] = (result, wall_seconds)
                stats.executed += 1
                echo(f"campaign: finished {by_key[key].label}")
    return executed


def _verify_sample(
    results: dict[str, Any],
    unique: dict[str, Job],
    cache: Optional[ResultCache],
    fraction: float,
    stats: ExecutionStats,
    echo: Callable[[str], None],
) -> None:
    """Re-run a deterministic sample of cache hits and diff fingerprints."""
    if cache is None or fraction <= 0.0:
        return
    for key, cached in list(results.items()):
        if not should_verify(key, fraction):
            continue
        job = unique[key]
        fresh = execute_payload(job.kind, dict(job.payload))
        stats.verified += 1
        if result_fingerprint(fresh) != result_fingerprint(cached):
            stats.verify_failures += 1
            cache.evict(key)
            results[key] = fresh
            echo(f"campaign: STALE cache entry for {job.label} (evicted)")
    if stats.verify_failures:
        raise CacheVerificationError(
            f"{stats.verify_failures} cached result(s) diverged from fresh runs; "
            "stale entries were evicted — re-run the campaign"
        )

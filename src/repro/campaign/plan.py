"""Campaign planning: expand an experiment selection into a job DAG.

Every figure/table of the paper decomposes into fully independent,
deterministic jobs — either one seeded simulation run (a
:class:`~repro.cluster.runner.RunSpec`) or one Table 1 traffic cell.
The planner asks each experiment module for the specs behind its
``run()`` (``plan_runs``/``plan_cells``) and wraps them into
:class:`Job` objects with a *content-addressed key*: the SHA-256 of the
canonicalised job payload plus the ``repro`` package version and the
cache schema version.  Two jobs with the same key are the same
computation, so

* identical specs shared by several experiments (e.g. the 2x/8x idem
  points of Figures 7 and 9b) execute once per campaign, and
* results can be cached on disk and reused across campaigns.

The key deliberately excludes the experiment id and the display label —
only what determines the simulation's outcome is hashed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

import repro
from repro.cluster.faults import (
    CrashFault,
    FaultSchedule,
    HealFault,
    LatencySpike,
    LossWindow,
    PartitionFault,
    RecoverFault,
    SlowReplica,
)
from repro.cluster.profile import ClusterProfile
from repro.cluster.runner import RunSpec
from repro.experiments.registry import get_experiment
from repro.population.spec import PopulationSpec
from repro.workload.open_loop import ArrivalSpec
from repro.workload.schedule import (
    BurstSchedule,
    ConstantSchedule,
    LoadSchedule,
    StepSchedule,
)
from repro.workload.ycsb import YcsbProfile

# Bump when the payload format or result layout changes incompatibly;
# old cache entries then simply stop matching.
# Schema history: 2 — ExperimentResult gained sim_stats (event-loop
# execution profile), changing pickles and result fingerprints.
# 3 — ExperimentResult gained client_stats (resilience counters),
# MetricsCollector gained timeout latencies, and RunSpec payloads
# gained schedule/arrivals entries (open-loop retry-storm runs).
# 4 — RunSpec payloads gained probes/probe_interval (replica-state
# probing + drift detection), ExperimentResult gained findings.
# 5 — RunSpec payloads gained a population entry (repro.population
# aggregate-client backend) and client_stats gained aggregate-pool
# counters for population runs.
# 6 — sharded campaign execution: the new KIND_SHARD job kind (a sim
# payload plus a "shard" cohort descriptor) and the deterministic
# shard-merge reducer entered the result pipeline (repro.campaign.shard).
CACHE_SCHEMA = 6

KIND_SIM = "sim"
KIND_CELL = "tab1-cell"
# One cohort slice of a sharded sim run (repro.campaign.shard): the
# payload is a derived KIND_SIM payload (fewer clients, offset seed,
# keep_metrics forced on) plus a "shard" metadata entry, so keys are
# shard-aware while payload_to_spec reads it like any sim payload.
KIND_SHARD = "sim-shard"

_FAULT_TYPES = {
    cls.__name__: cls
    for cls in (
        CrashFault,
        RecoverFault,
        PartitionFault,
        HealFault,
        LossWindow,
        SlowReplica,
        LatencySpike,
    )
}


_SCHEDULE_TYPES = {
    cls.__name__: cls for cls in (ConstantSchedule, StepSchedule, BurstSchedule)
}


class UnplannableSpec(ValueError):
    """The spec uses features the campaign cannot serialise (and hence
    cannot key, distribute or cache); it must run inline instead."""


@dataclass(frozen=True)
class Job:
    """One independent unit of campaign work."""

    experiment_id: str
    kind: str  # KIND_SIM or KIND_CELL
    payload: dict[str, Any]  # canonical JSON-safe description; treat as immutable
    label: str  # human-readable, excluded from the key

    @property
    def key(self) -> str:
        return job_key(self.kind, self.payload)


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def job_key(kind: str, payload: dict[str, Any]) -> str:
    """Content-addressed key of a job."""
    text = f"{CACHE_SCHEMA}:{repro.__version__}:{kind}:{canonical_json(payload)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _check_jsonable(value: Any, where: str) -> Any:
    """Validate that ``value`` contains only JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_check_jsonable(item, where) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _check_jsonable(item, where) for key, item in value.items()
        }
    raise UnplannableSpec(
        f"{where} contains a non-serialisable value of type {type(value).__name__}"
    )


def profile_to_payload(profile: ClusterProfile) -> dict[str, Any]:
    """Serialise a cluster profile (including its workload) to JSON-safe data."""
    payload = dataclasses.asdict(profile)
    return _check_jsonable(payload, "ClusterProfile")


def payload_to_profile(payload: dict[str, Any]) -> ClusterProfile:
    data = dict(payload)
    workload = YcsbProfile(**data.pop("workload"))
    return ClusterProfile(workload=workload, **data)


def faults_to_payload(faults: FaultSchedule) -> list[dict[str, Any]]:
    """Serialise a fault schedule; every fault is a frozen dataclass of
    primitives, keyed by its class name."""
    serialised = []
    for fault in faults.faults:
        name = type(fault).__name__
        if name not in _FAULT_TYPES:
            raise UnplannableSpec(f"unknown fault type {name!r}")
        entry = {"type": name}
        entry.update(_check_jsonable(dataclasses.asdict(fault), name))
        serialised.append(entry)
    return serialised


def payload_to_faults(payload: list[dict[str, Any]]) -> FaultSchedule:
    faults = []
    for entry in payload:
        data = dict(entry)
        cls = _FAULT_TYPES[data.pop("type")]
        faults.append(cls(**data))
    return FaultSchedule(faults)


def schedule_to_payload(schedule: LoadSchedule) -> dict[str, Any]:
    """Serialise a built-in load schedule; like faults, every built-in
    schedule is a frozen dataclass of primitives keyed by class name.
    Custom :class:`LoadSchedule` subclasses stay unplannable."""
    cls = type(schedule)
    if _SCHEDULE_TYPES.get(cls.__name__) is not cls:
        raise UnplannableSpec(
            f"load schedule type {cls.__name__!r} is not campaign-serialisable"
        )
    entry = {"type": cls.__name__}
    entry.update(_check_jsonable(dataclasses.asdict(schedule), cls.__name__))
    return entry


def payload_to_schedule(payload: dict[str, Any]) -> LoadSchedule:
    data = dict(payload)
    cls = _SCHEDULE_TYPES[data.pop("type")]
    if cls is StepSchedule:
        data["steps"] = tuple(
            (float(time), int(clients)) for time, clients in data["steps"]
        )
    return cls(**data)


def arrivals_to_payload(arrivals: ArrivalSpec) -> dict[str, Any]:
    """Serialise an open-loop arrival plan (piecewise Poisson rates)."""
    return {
        "steps": [[float(time), float(rate)] for time, rate in arrivals.steps]
    }


def payload_to_arrivals(payload: dict[str, Any]) -> ArrivalSpec:
    return ArrivalSpec(
        steps=tuple((float(time), float(rate)) for time, rate in payload["steps"])
    )


def population_to_payload(population: PopulationSpec) -> dict[str, Any]:
    """Serialise an aggregate client-population spec (frozen dataclass
    of primitives, like the fault and arrival types)."""
    return _check_jsonable(dataclasses.asdict(population), "PopulationSpec")


def payload_to_population(payload: dict[str, Any]) -> PopulationSpec:
    return PopulationSpec(**payload)


def spec_to_payload(spec: RunSpec) -> dict[str, Any]:
    """Canonical JSON-safe description of a run spec.

    Raises :class:`UnplannableSpec` for specs the campaign cannot
    faithfully reconstruct in a worker process (custom load-schedule
    subclasses, observability hubs attached to the result).
    """
    if spec.observe:
        raise UnplannableSpec("observed runs (spec.observe) are not cacheable")
    return {
        "system": spec.system,
        "clients": spec.clients,
        "duration": spec.duration,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "bucket_width": spec.bucket_width,
        "keep_metrics": spec.keep_metrics,
        "safety": spec.safety,
        "overrides": _check_jsonable(spec.overrides, "RunSpec.overrides"),
        "profile": None if spec.profile is None else profile_to_payload(spec.profile),
        "faults": None if spec.faults is None else faults_to_payload(spec.faults),
        "schedule": (
            None if spec.schedule is None else schedule_to_payload(spec.schedule)
        ),
        "arrivals": (
            None if spec.arrivals is None else arrivals_to_payload(spec.arrivals)
        ),
        "population": (
            None
            if spec.population is None
            else population_to_payload(spec.population)
        ),
        "probes": spec.probes,
        "probe_interval": spec.obs_sample_interval,
    }


def payload_to_spec(payload: dict[str, Any]) -> RunSpec:
    """Reconstruct a run spec from its canonical payload."""
    return RunSpec(
        system=payload["system"],
        clients=payload["clients"],
        duration=payload["duration"],
        warmup=payload["warmup"],
        seed=payload["seed"],
        bucket_width=payload["bucket_width"],
        keep_metrics=payload["keep_metrics"],
        safety=payload["safety"],
        overrides=dict(payload["overrides"]),
        profile=(
            None if payload["profile"] is None else payload_to_profile(payload["profile"])
        ),
        faults=(
            None if payload["faults"] is None else payload_to_faults(payload["faults"])
        ),
        schedule=(
            None
            if payload["schedule"] is None
            else payload_to_schedule(payload["schedule"])
        ),
        arrivals=(
            None
            if payload["arrivals"] is None
            else payload_to_arrivals(payload["arrivals"])
        ),
        population=(
            None
            if payload.get("population") is None
            else payload_to_population(payload["population"])
        ),
        probes=payload["probes"],
        obs_sample_interval=payload["probe_interval"],
    )


def sim_job(experiment_id: str, spec: RunSpec) -> Job:
    """Wrap one run spec into a campaign job."""
    return Job(
        experiment_id=experiment_id,
        kind=KIND_SIM,
        payload=spec_to_payload(spec),
        label=f"{experiment_id}/{spec.system}/c{spec.clients}/s{spec.seed}",
    )


def cell_job(experiment_id: str, kwargs: dict[str, Any]) -> Job:
    """Wrap one Table 1 cell into a campaign job."""
    return Job(
        experiment_id=experiment_id,
        kind=KIND_CELL,
        payload=_check_jsonable(dict(kwargs), "tab1 cell"),
        label=f"{experiment_id}/{kwargs['system']}/{kwargs['load_label']}",
    )


def plan_experiment(
    experiment_id: str,
    quick: bool = False,
    runs: Optional[int] = None,
    seed0: int = 0,
    duration: Optional[float] = None,
) -> list[Job]:
    """All jobs one experiment needs, in its execution order."""
    module = get_experiment(experiment_id)
    jobs: list[Job] = []
    if hasattr(module, "plan_cells"):
        for kwargs in module.plan_cells(quick=quick, seed0=seed0):
            jobs.append(cell_job(experiment_id, kwargs))
    if hasattr(module, "plan_runs"):
        for spec in module.plan_runs(
            quick=quick, runs=runs, seed0=seed0, duration=duration
        ):
            jobs.append(sim_job(experiment_id, spec))
    if not jobs:
        raise UnplannableSpec(
            f"experiment {experiment_id!r} declares no plan_runs/plan_cells"
        )
    return jobs


def plan_campaign(
    experiment_ids: list[str],
    quick: bool = False,
    runs: Optional[int] = None,
    seed0: int = 0,
    duration: Optional[float] = None,
) -> list[Job]:
    """All jobs of a campaign, in experiment order (duplicates included;
    the executor dedups by key)."""
    jobs: list[Job] = []
    for experiment_id in experiment_ids:
        jobs.extend(
            plan_experiment(
                experiment_id, quick=quick, runs=runs, seed0=seed0, duration=duration
            )
        )
    return jobs

"""Cache garbage collection: prune entries no recent campaign used.

The content-addressed cache only ever grows — every schema bump, spec
tweak or version change strands the previous keys on disk.  To know
which entries are still *useful* without re-planning old campaigns, the
engine records a small **run manifest** after every campaign
(:func:`record_run`): the sorted set of job keys that campaign
referenced, stamped with wall time, under ``<cache>/runs/``.

:func:`collect_garbage` then keeps the union of the last ``keep_runs``
manifests' keys and evicts everything else (plus, optionally, anything
older than ``max_age_days`` regardless of references).  Two safety
valves keep it conservative:

* with **no manifests on disk** (a cache predating this feature),
  reference pruning is skipped entirely — only the age cutoff, if
  given, removes anything;
* if any manifest inside the keep window is unreadable, reference
  pruning is likewise skipped for the whole pass, since its references
  cannot be honoured.

Wall-clock use is deliberate and sanctioned here: manifests order
campaign runs in real time and never feed a simulation (``repro.campaign``
is excluded from the determinism lint's wall-clock rule).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.campaign.cache import ResultCache

#: Subdirectory of the cache root holding one manifest per campaign run.
RUNS_DIRNAME = "runs"


def record_run(
    root: Union[str, Path],
    keys: Iterable[str],
    started: Optional[float] = None,
) -> Path:
    """Persist the manifest of one campaign's referenced job keys.

    The filename embeds the start time in milliseconds (so plain
    lexicographic order is chronological) and a short digest of the key
    set (so two campaigns started within the same millisecond cannot
    clobber each other unless they referenced the same jobs anyway).
    """
    if started is None:
        started = time.time()
    runs_dir = Path(root) / RUNS_DIRNAME
    runs_dir.mkdir(parents=True, exist_ok=True)
    sorted_keys = sorted(set(keys))
    digest = hashlib.sha256("\n".join(sorted_keys).encode("utf-8")).hexdigest()[:12]
    path = runs_dir / f"{int(started * 1000):013d}-{digest}.json"
    manifest = {"started": started, "keys": sorted_keys}
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


@dataclass
class GcReport:
    """What one garbage-collection pass examined and reclaimed."""

    examined: int = 0
    kept: int = 0
    removed: int = 0
    reclaimed_bytes: int = 0
    manifests_kept: int = 0
    manifests_removed: int = 0
    #: True when reference pruning was skipped (no or unreadable manifests).
    references_unknown: bool = False

    def render(self) -> str:
        lines = [
            f"gc: examined {self.examined} cache entr"
            f"{'y' if self.examined == 1 else 'ies'}: "
            f"kept {self.kept}, removed {self.removed} "
            f"({self.reclaimed_bytes} bytes reclaimed)",
            f"gc: run manifests: kept {self.manifests_kept}, "
            f"removed {self.manifests_removed}",
        ]
        if self.references_unknown:
            lines.append(
                "gc: no readable run manifests — reference pruning skipped "
                "(age cutoff only)"
            )
        return "\n".join(lines)


def _load_manifest_keys(path: Path) -> Optional[set[str]]:
    """The key set one manifest references, or ``None`` if unreadable."""
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
        keys = manifest["keys"]
    except (OSError, ValueError, KeyError):
        return None
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        return None
    return set(keys)


def collect_garbage(
    cache: ResultCache,
    keep_runs: int = 5,
    max_age_days: Optional[float] = None,
    now: Optional[float] = None,
) -> GcReport:
    """Evict cache entries the last ``keep_runs`` campaigns never used.

    An entry is removed when it is unreferenced by every kept manifest,
    or (independently of references) when ``max_age_days`` is given and
    the entry's pickle is older than that.  Manifests beyond the keep
    window are pruned too.  Returns a :class:`GcReport`.
    """
    if keep_runs < 1:
        raise ValueError(f"keep_runs must be >= 1, got {keep_runs}")
    if now is None:
        now = time.time()
    report = GcReport()
    root = cache.root
    runs_dir = root / RUNS_DIRNAME
    manifests = sorted(runs_dir.glob("*.json")) if runs_dir.is_dir() else []
    kept_manifests = manifests[-keep_runs:]
    stale_manifests = manifests[: len(manifests) - len(kept_manifests)]

    referenced: set[str] = set()
    prune_unreferenced = bool(kept_manifests)
    for manifest in kept_manifests:
        keys = _load_manifest_keys(manifest)
        if keys is None:
            # A kept manifest we cannot read might reference anything;
            # honouring it means not reference-pruning at all this pass.
            prune_unreferenced = False
            break
        referenced.update(keys)
    report.references_unknown = not prune_unreferenced

    cutoff = None if max_age_days is None else now - max_age_days * 86400.0
    for path in sorted(root.glob("*/*.pkl")):
        key = path.stem
        report.examined += 1
        unreferenced = prune_unreferenced and key not in referenced
        expired = False
        if cutoff is not None:
            try:
                expired = path.stat().st_mtime < cutoff
            except OSError:
                report.kept += 1
                continue  # evicted concurrently; nothing to reclaim
        if not (unreferenced or expired):
            report.kept += 1
            continue
        entry_bytes = 0
        for piece in (path, path.with_suffix(".json")):
            try:
                entry_bytes += piece.stat().st_size
            except OSError:
                pass
        cache.evict(key)
        report.removed += 1
        report.reclaimed_bytes += entry_bytes

    for manifest in stale_manifests:
        try:
            size = manifest.stat().st_size
            manifest.unlink()
        except OSError:
            continue
        report.manifests_removed += 1
        report.reclaimed_bytes += size
    report.manifests_kept = len(kept_manifests)
    return report

"""Baseline store and regression gate for campaign headline metrics.

Each experiment reduces to a handful of *headline metrics* — the
numbers the paper's prose quotes (knee throughput, plateau latency,
reject downtime, traffic-overhead ratios).  A campaign run with
``--update-baselines`` writes them to committed ``BENCH_<id>.json``
files under ``benchmarks/baselines/``; ``--check`` re-extracts them and
fails (non-zero exit) when any metric drifts beyond its tolerance band.

Baselines are only comparable when produced under the same campaign
settings (quick mode, runs, duration, seed), so the settings are
recorded in each file and a mismatch fails the check with a clear
message instead of comparing incomparable numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

import repro

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"

# Symmetric default tolerance band: a metric regresses when it moves
# more than 15% (relative) and more than the absolute floor away from
# its baseline.  The floor keeps near-zero metrics (e.g. a 0.25 s
# reject downtime measured in bucket widths) from tripping on noise.
DEFAULT_RELATIVE_TOLERANCE = 0.15
DEFAULT_ABSOLUTE_TOLERANCE = 1e-6

#: Settings fields that must match for a baseline comparison to be valid.
SETTINGS_FIELDS = ("quick", "runs", "duration", "seed0")


def _fig2_headlines(data: Any) -> dict[str, float]:
    knee = data.saturation_point()
    return {
        "knee.throughput": knee.throughput,
        "knee.latency_ms": knee.latency_ms,
        "max_load.latency_ms": data.points[-1].latency_ms,
    }


def _fig3_headlines(data: Any) -> dict[str, float]:
    return {
        "reject_downtime_s": data.reject_downtime,
        "pre_crash_reject_rate": data.pre_crash_reject_rate,
        "post_crash_reject_rate": data.post_crash_reject_rate,
    }


def _fig6_headlines(data: Any) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for system in data.curves:
        metrics[f"{system}.max_throughput"] = data.max_throughput(system)
        metrics[f"{system}.saturation_latency_ms"] = data.latency_at_saturation(system)
        metrics[f"{system}.max_load_latency_ms"] = data.latency_at_max_load(system)
    return metrics


def _fig7_headlines(data: Any) -> dict[str, float]:
    heaviest = data.points[-1]
    return {
        "max_load.throughput": heaviest.throughput,
        "max_load.reject_share": heaviest.reject_share,
        "max_load.reject_latency_ms": heaviest.reject_latency_ms,
    }


def _fig8_headlines(data: Any) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for threshold in data.curves:
        metrics[f"rt{threshold}.max_throughput"] = data.max_throughput(threshold)
        metrics[f"rt{threshold}.plateau_latency_ms"] = data.plateau_latency(threshold)
    return metrics


def _fig9_headlines(data: Any) -> dict[str, float]:
    final = data.extreme_final()
    peak = data.extreme_peak_throughput()
    return {
        "extreme.peak_throughput": peak,
        "extreme.final_fraction_of_peak": final.throughput / peak if peak else 0.0,
        "extreme.final_latency_ms": final.latency_ms,
        "misconfig.max_load_latency_ms": data.misconfigured[-1].latency_ms,
    }


def _fig10_headlines(data: Any) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for panel, runs in (("abc", data.panels_abc), ("d", data.panel_d)):
        for run_ in runs:
            key = f"{panel}.{run_.system}.c{run_.clients}.{run_.target}"
            metrics[f"{key}.service_gap_s"] = run_.service_gap
            metrics[f"{key}.reject_downtime_s"] = run_.reject_downtime
            metrics[f"{key}.post_throughput"] = run_.post_throughput
    return metrics


def _figR_headlines(data: Any) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for run_ in data.runs:
        key = f"{run_.system}.{run_.policy}"
        # 0/1 indicators are robust to the ±15% band: they only move
        # when the hysteresis story itself changes.
        metrics[f"{key}.recovered"] = 1.0 if run_.recovered else 0.0
        metrics[f"{key}.amplification"] = run_.amplification
        if run_.drift_findings is not None:
            # Probed arm: the drift detectors must stay silent (the
            # active-slot leak regression gate; 0/1-style like recovered).
            metrics[f"{key}.drift_findings"] = float(run_.drift_findings)
    chaos_violations = sum(
        len(run_.safety_violations) for run_ in data.runs if run_.crashed
    )
    metrics["chaos.safety_violations"] = float(chaos_violations)
    return metrics


def _figM_headlines(data: Any) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for run_ in data.runs:
        key = f"{run_.system}.n{run_.clients}"
        metrics[f"{key}.goodput"] = run_.goodput
        metrics[f"{key}.p99_ms"] = run_.p99_ms
        metrics[f"{key}.reject_rate"] = run_.reject_rate
        # The backend's cost claim: simulation cost per request is flat
        # in N (the 1M arm must not cost more events than the 10k arm).
        metrics[f"{key}.events_per_request"] = run_.events_per_request
    return metrics


def _tab1_headlines(data: Any) -> dict[str, float]:
    metrics: dict[str, float] = {}
    loads = sorted({cell.load_label for cell in data.cells})
    for load in loads:
        idem = data.cell("idem", load)
        nopr = data.cell("idem-nopr", load)
        slug = load.split(" ")[0]
        metrics[f"{slug}.idem_bytes_per_request"] = idem.bytes_per_request
        # The paper's overhead claim: rejection costs ~nothing on the wire.
        metrics[f"{slug}.overhead_ratio"] = (
            idem.bytes_per_request / nopr.bytes_per_request
            if nopr.bytes_per_request
            else 0.0
        )
    return metrics


HEADLINE_EXTRACTORS: dict[str, Callable[[Any], dict[str, float]]] = {
    "fig2": _fig2_headlines,
    "fig3": _fig3_headlines,
    "fig6": _fig6_headlines,
    "fig7": _fig7_headlines,
    "fig8": _fig8_headlines,
    "fig9": _fig9_headlines,
    "fig10": _fig10_headlines,
    "figR": _figR_headlines,
    "figM": _figM_headlines,
    "tab1": _tab1_headlines,
}


def extract_headlines(experiment_id: str, data: Any) -> dict[str, float]:
    """The headline metrics of one experiment's data object."""
    extractor = HEADLINE_EXTRACTORS.get(experiment_id)
    if extractor is None:
        return {}
    return {metric: float(value) for metric, value in extractor(data).items()}


def baseline_path(directory: Path, experiment_id: str) -> Path:
    return Path(directory) / f"BENCH_{experiment_id}.json"


def write_baseline(
    directory: Path,
    experiment_id: str,
    metrics: dict[str, float],
    settings: dict[str, Any],
) -> Path:
    """Write/refresh one committed baseline file."""
    path = baseline_path(directory, experiment_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "experiment": experiment_id,
        "version": repro.__version__,
        "settings": {key: settings.get(key) for key in SETTINGS_FIELDS},
        "tolerance": {
            "relative": DEFAULT_RELATIVE_TOLERANCE,
            "absolute": DEFAULT_ABSOLUTE_TOLERANCE,
        },
        "metrics": metrics,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_baseline(directory: Path, experiment_id: str) -> Optional[dict[str, Any]]:
    path = baseline_path(directory, experiment_id)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


@dataclass
class BaselineEntry:
    """One compared metric (or one structural problem)."""

    experiment_id: str
    metric: str
    status: str  # "ok" | "regressed" | "missing-metric" | "new-metric" | ...
    baseline: Optional[float] = None
    current: Optional[float] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "new-metric")


@dataclass
class BaselineReport:
    """The outcome of gating one campaign against its baselines."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def regressions(self) -> list[BaselineEntry]:
        return [entry for entry in self.entries if not entry.ok]

    def render(self) -> str:
        lines = ["Baseline check:"]
        for entry in self.entries:
            if entry.baseline is None and entry.current is None:
                lines.append(
                    f"  {entry.status:18s} {entry.experiment_id}/{entry.metric}"
                    f"  {entry.detail}"
                )
                continue
            lines.append(
                f"  {entry.status:18s} {entry.experiment_id}/{entry.metric}: "
                f"baseline={_fmt(entry.baseline)} current={_fmt(entry.current)}"
                + (f"  {entry.detail}" if entry.detail else "")
            )
        verdict = "PASS" if self.ok else f"FAIL ({len(self.regressions)} problem(s))"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "entries": [
                {
                    "experiment": entry.experiment_id,
                    "metric": entry.metric,
                    "status": entry.status,
                    "baseline": entry.baseline,
                    "current": entry.current,
                    "detail": entry.detail,
                }
                for entry in self.entries
            ],
        }


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6g}"


def _within(baseline: float, current: float, relative: float, absolute: float) -> bool:
    delta = abs(current - baseline)
    return delta <= absolute or delta <= relative * abs(baseline)


def check_experiment(
    report: BaselineReport,
    directory: Path,
    experiment_id: str,
    headlines: dict[str, float],
    settings: dict[str, Any],
) -> None:
    """Gate one experiment's headline metrics against its baseline file."""
    document = load_baseline(directory, experiment_id)
    if document is None:
        report.entries.append(
            BaselineEntry(
                experiment_id,
                "*",
                "missing-baseline",
                detail=f"no {baseline_path(directory, experiment_id).name}; "
                "run with --update-baselines",
            )
        )
        return
    recorded = document.get("settings", {})
    wanted = {key: settings.get(key) for key in SETTINGS_FIELDS}
    if {key: recorded.get(key) for key in SETTINGS_FIELDS} != wanted:
        report.entries.append(
            BaselineEntry(
                experiment_id,
                "*",
                "settings-mismatch",
                detail=f"baseline recorded {recorded}, campaign ran {wanted}",
            )
        )
        return
    tolerance = document.get("tolerance", {})
    relative = float(tolerance.get("relative", DEFAULT_RELATIVE_TOLERANCE))
    absolute = float(tolerance.get("absolute", DEFAULT_ABSOLUTE_TOLERANCE))
    overrides = document.get("tolerances", {})
    baseline_metrics = document.get("metrics", {})
    for metric, baseline_value in sorted(baseline_metrics.items()):
        override = overrides.get(metric, {})
        rel = float(override.get("relative", relative))
        abs_ = float(override.get("absolute", absolute))
        if metric not in headlines:
            report.entries.append(
                BaselineEntry(
                    experiment_id,
                    metric,
                    "missing-metric",
                    baseline=float(baseline_value),
                    detail="metric not produced by this campaign",
                )
            )
            continue
        current = headlines[metric]
        ok = _within(float(baseline_value), current, rel, abs_)
        detail = "" if ok else f"outside ±{rel * 100:.0f}% band"
        report.entries.append(
            BaselineEntry(
                experiment_id,
                metric,
                "ok" if ok else "regressed",
                baseline=float(baseline_value),
                current=current,
                detail=detail,
            )
        )
    for metric in sorted(set(headlines) - set(baseline_metrics)):
        report.entries.append(
            BaselineEntry(
                experiment_id,
                metric,
                "new-metric",
                current=headlines[metric],
                detail="not in baseline; refresh with --update-baselines",
            )
        )


def check_baselines(
    directory: Path,
    headlines_by_experiment: dict[str, dict[str, float]],
    settings: dict[str, Any],
) -> BaselineReport:
    """Gate a whole campaign; one report across all its experiments."""
    report = BaselineReport()
    for experiment_id, headlines in headlines_by_experiment.items():
        check_experiment(report, Path(directory), experiment_id, headlines, settings)
    return report

"""Sharded campaign execution: slice one big run into cohort jobs.

A simulated deployment with ``C`` closed-loop clients against one
replica group can equivalently be modelled as ``K`` *independent*
cohorts — ``K`` full clusters, each serving ``C/K`` clients with its
own seeded randomness — whose measurements are then pooled.  That is
exactly how the paper's large population experiments scale out in
practice (sharded deployments), and it is what lets a single oversized
campaign job use the whole process pool instead of serialising on one
core.

This module implements that slicing for :data:`~repro.campaign.plan.KIND_SIM`
jobs:

* :func:`shard_payloads` derives ``K`` cohort payloads from one sim
  payload — clients split evenly (remainder to the earliest cohorts),
  seeds offset by :data:`SHARD_SEED_STRIDE`, open-loop arrival rates
  scaled to the cohort's client share, ``keep_metrics`` forced on (the
  merge needs raw samples), plus a ``"shard"`` descriptor so the job
  key is shard-aware.
* :func:`merge_shard_results` pools cohort results back into one
  :class:`~repro.cluster.metrics.ExperimentResult` **exactly**: latency
  summaries are recomputed from the concatenated raw samples (not
  approximated from per-shard summaries), rates and counters sum,
  ``peak_heap`` takes the max.  The reducer consumes shard results in
  cohort order, so its output is a pure function of the shard plan —
  independent of worker count, completion order, or scheduling.

**The determinism contract**: a sharded run executed on any number of
workers is byte-identical to the same shard plan executed serially.
It is *not* numerically identical to the unsharded run — ``K``
independent cohorts are a different (equally valid) deployment model
than one monolithic cluster, which is why the shard count is part of
the job payload and hence the cache key.

Runs that are inherently cluster-global stay unsharded:
fault schedules and load schedules act on one shared cluster/population,
safety checking and probe recording attach to one cluster, and a run
that asked to keep its metrics collector (timeline plots) needs the
single-cluster collector.  :func:`shardable_reason` encodes those
guards; :func:`shard_campaign_jobs` leaves such jobs untouched.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.campaign.plan import KIND_SHARD, KIND_SIM, Job
from repro.cluster.metrics import ExperimentResult
from repro.sim.monitor import SummaryStats

#: Seed offset between cohorts (a prime, so shard seeds never collide
#: with the ``seed0 + run_index`` lattice the experiment planners use).
#: Cohort ``i`` runs with ``base_seed + SHARD_SEED_STRIDE * (i + 1)`` —
#: shard 0 deliberately does *not* reuse the base seed, so no cohort is
#: correlated with the unsharded run it replaces.
SHARD_SEED_STRIDE = 7919


def shardable_reason(payload: dict[str, Any]) -> Optional[str]:
    """Why this sim payload cannot be sharded; ``None`` when it can.

    The guards are intrinsic to the payload — the caller separately
    checks that there are at least as many clients as shards.
    """
    if payload.get("faults") is not None:
        return "fault schedules act on one shared cluster"
    if payload.get("schedule") is not None:
        return "load schedules modulate one shared client population"
    if payload.get("safety"):
        return "safety checking attaches to one cluster"
    if payload.get("probes"):
        return "probe recording attaches to one cluster"
    if payload.get("keep_metrics"):
        return "the run needs its single-cluster metrics collector"
    return None


def _split_clients(clients: int, shards: int) -> list[int]:
    """Even client split; the remainder goes to the earliest cohorts."""
    base, remainder = divmod(clients, shards)
    return [base + (1 if index < remainder else 0) for index in range(shards)]


def shard_payloads(payload: dict[str, Any], shards: int) -> list[dict[str, Any]]:
    """Derive the ``shards`` cohort payloads of one sim payload.

    Raises :class:`ValueError` when the payload is unshardable or has
    fewer clients than cohorts; callers that want to degrade gracefully
    check :func:`shardable_reason` first.
    """
    if shards < 2:
        raise ValueError(f"sharding needs at least 2 cohorts, got {shards}")
    reason = shardable_reason(payload)
    if reason is not None:
        raise ValueError(f"payload is not shardable: {reason}")
    clients = payload["clients"]
    if clients < shards:
        raise ValueError(
            f"cannot split {clients} clients into {shards} cohorts"
        )
    cohort_sizes = _split_clients(clients, shards)
    result = []
    for index, cohort_clients in enumerate(cohort_sizes):
        derived = dict(payload)
        derived["clients"] = cohort_clients
        derived["seed"] = payload["seed"] + SHARD_SEED_STRIDE * (index + 1)
        # The merge recomputes summaries from raw samples, so every
        # cohort must ship its collector back.
        derived["keep_metrics"] = True
        if payload.get("arrivals") is not None:
            # Open-loop rates describe the whole population; each
            # cohort receives its proportional share.
            share = cohort_clients / clients
            derived["arrivals"] = {
                "steps": [
                    [time, rate * share]
                    for time, rate in payload["arrivals"]["steps"]
                ]
            }
        derived["shard"] = {"index": index, "of": shards}
        result.append(derived)
    return result


def shard_job(base: Job, shard_payload: dict[str, Any]) -> Job:
    """Wrap one cohort payload into a campaign job."""
    shard = shard_payload["shard"]
    return Job(
        experiment_id=base.experiment_id,
        kind=KIND_SHARD,
        payload=shard_payload,
        label=f"{base.label}#shard{shard['index']}of{shard['of']}",
    )


def shard_campaign_jobs(
    jobs: list[Job], shards: int
) -> tuple[list[Job], dict[str, tuple[Job, list[str]]]]:
    """Slice every shardable sim job of a campaign into cohort jobs.

    Returns the transformed job list (unshardable jobs pass through
    untouched, in place) and the merge groups: ``base job key ->
    (base job, [cohort job keys in shard order])``.  After execution,
    :func:`merge_shard_groups` uses the groups to synthesise the base
    jobs' results, so everything downstream (aggregation, baselines,
    reports) resolves results exactly as in an unsharded campaign.
    """
    if shards < 2:
        return list(jobs), {}
    transformed: list[Job] = []
    groups: dict[str, tuple[Job, list[str]]] = {}
    for job in jobs:
        if (
            job.kind != KIND_SIM
            or shardable_reason(job.payload) is not None
            or job.payload["clients"] < shards
        ):
            transformed.append(job)
            continue
        base_key = job.key
        cohort_jobs = [
            shard_job(job, payload)
            for payload in shard_payloads(job.payload, shards)
        ]
        transformed.extend(cohort_jobs)
        # Duplicate base jobs (specs shared between experiments) map to
        # the same group; the executor dedups the cohort jobs by key.
        groups[base_key] = (job, [cohort.key for cohort in cohort_jobs])
    return transformed, groups


def _merged_client_stats(results: list[ExperimentResult]) -> Optional[dict]:
    if all(result.client_stats is None for result in results):
        return None
    totals: dict[str, float] = {}
    for result in results:
        for key, value in (result.client_stats or {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
    # Ratios do not sum; recompute from the pooled counters.
    if "sends" in totals:
        totals["load_amplification"] = (
            totals["sends"] / totals["commands"] if totals.get("commands") else 1.0
        )
    return totals


def merge_shard_results(
    payload: dict[str, Any], results: list[ExperimentResult]
) -> ExperimentResult:
    """Pool cohort results (in shard order) into one exact result.

    ``payload`` is the *base* (unsharded) sim payload; it supplies the
    identity fields.  Latency summaries come from the concatenated raw
    cohort samples — bit-for-bit what ``SummaryStats.of`` would report
    had one collector recorded every cohort's operations — so the merge
    is exact, not a summary-of-summaries approximation.
    """
    if not results:
        raise ValueError("cannot merge zero shard results")
    for index, result in enumerate(results):
        if result.metrics is None:
            raise ValueError(
                f"shard {index} result carries no metrics collector; "
                "shard payloads must force keep_metrics on"
            )
    reply_samples: list[float] = []
    reject_samples: list[float] = []
    traffic: dict[str, int] = {}
    replica_stats: list[dict] = []
    throughput = 0.0
    reject_throughput = 0.0
    timeouts = 0
    dispatched = 0
    drained = 0
    peak_heap = 0
    for result in results:
        reply_samples.extend(result.metrics.reply_latency.samples)
        reject_samples.extend(result.metrics.reject_latency.samples)
        throughput += result.throughput
        reject_throughput += result.reject_throughput
        timeouts += result.timeouts
        for key, value in result.traffic.items():
            traffic[key] = traffic.get(key, 0) + value
        replica_stats.extend(result.replica_stats)
        stats = result.sim_stats or {}
        dispatched += stats.get("dispatched_events", 0)
        drained += stats.get("drained_tombstones", 0)
        peak_heap = max(peak_heap, stats.get("peak_heap", 0))
    return ExperimentResult(
        system=payload["system"],
        clients=payload["clients"],
        seed=payload["seed"],
        duration=payload["duration"],
        warmup=payload["warmup"],
        throughput=throughput,
        latency=SummaryStats.of(reply_samples),
        reject_throughput=reject_throughput,
        reject_latency=SummaryStats.of(reject_samples),
        timeouts=timeouts,
        traffic=traffic,
        replica_stats=replica_stats,
        metrics=None,
        safety_violations=None,
        obs=None,
        findings=None,
        sim_stats={
            "dispatched_events": dispatched,
            "peak_heap": peak_heap,
            "drained_tombstones": drained,
            "shards": len(results),
        },
        client_stats=_merged_client_stats(results),
    )


def merge_shard_groups(
    results: dict[str, Any], groups: dict[str, tuple[Job, list[str]]]
) -> None:
    """Synthesise every base job's result from its cohorts, in place.

    ``results`` maps job key -> result (as produced by
    ``execute_jobs``); after this call it additionally maps each base
    key to the merged result, so result resolution downstream is
    oblivious to sharding.  Cohort results stay in the mapping (their
    cache entries are what makes warm reruns cheap).
    """
    for base_key, (base_job, cohort_keys) in groups.items():
        cohort_results = [results[key] for key in cohort_keys]
        results[base_key] = merge_shard_results(base_job.payload, cohort_results)


def run_sharded(
    base_payload: dict[str, Any], shards: int
) -> ExperimentResult:
    """Execute one sim payload's shard plan serially and merge it.

    The serial reference path: tests and the CI campaign-smoke compare
    pool execution against this, byte for byte.
    """
    from repro.campaign.pool import execute_payload

    payloads = shard_payloads(base_payload, shards)
    results = [execute_payload(KIND_SHARD, payload) for payload in payloads]
    return merge_shard_results(base_payload, results)


__all__ = [
    "SHARD_SEED_STRIDE",
    "merge_shard_groups",
    "merge_shard_results",
    "run_sharded",
    "shard_campaign_jobs",
    "shard_job",
    "shard_payloads",
    "shardable_reason",
]

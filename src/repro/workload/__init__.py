"""Workload generation.

Implements the YCSB core workload model the paper evaluates with
(Section 7.1, update-heavy workload): an operation mix over a keyspace
with configurable request distribution, plus time-varying load shapes
for burst experiments.
"""

from repro.workload.keys import KeyChooser, LatestKeys, UniformKeys, ZipfianKeys
from repro.workload.open_loop import ArrivalSpec, OpenLoopDriver, spike_rate
from repro.workload.schedule import BurstSchedule, ConstantSchedule, LoadSchedule, StepSchedule
from repro.workload.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_UPDATE_HEAVY,
    YcsbWorkload,
)

__all__ = [
    "ArrivalSpec",
    "BurstSchedule",
    "ConstantSchedule",
    "KeyChooser",
    "LatestKeys",
    "LoadSchedule",
    "OpenLoopDriver",
    "spike_rate",
    "StepSchedule",
    "UniformKeys",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_UPDATE_HEAVY",
    "YcsbWorkload",
    "ZipfianKeys",
]

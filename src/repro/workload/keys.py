"""Key choosers: which record a YCSB operation touches.

The zipfian generator follows the YCSB reference implementation
(Gray et al.'s rejection-free algorithm) so that request skew matches
what the paper's benchmark produced.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class KeyChooser(ABC):
    """Chooses record indices in ``[0, record_count)``."""

    def __init__(self, record_count: int):
        if record_count <= 0:
            raise ValueError(f"record count must be positive, got {record_count}")
        self.record_count = record_count

    @abstractmethod
    def next_index(self, rng: random.Random) -> int:
        """Draw the index of the next record to touch."""


class UniformKeys(KeyChooser):
    """Every record is equally likely."""

    def next_index(self, rng: random.Random) -> int:
        return rng.randrange(self.record_count)


class ZipfianKeys(KeyChooser):
    """YCSB's zipfian distribution with constant ``theta`` (default 0.99).

    Hot items get most requests; with theta=0.99 the most popular record
    receives roughly 10% of all operations for a 1000-record keyspace.
    Indices are scrambled via a multiplicative hash so that popularity is
    spread across the keyspace rather than concentrated at index 0, as
    in YCSB's "scrambled zipfian".
    """

    def __init__(self, record_count: int, theta: float = 0.99, scrambled: bool = True):
        super().__init__(record_count)
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.theta = theta
        self.scrambled = scrambled
        self._zetan = self._zeta(record_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / record_count) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / i**theta for i in range(1, n + 1))

    def next_index(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5**self.theta:
            rank = 1
        else:
            rank = int(
                self.record_count * (self._eta * u - self._eta + 1.0) ** self._alpha
            )
            rank = min(rank, self.record_count - 1)
        if not self.scrambled:
            return rank
        # Fibonacci hashing spreads hot ranks over the keyspace; the +1
        # offset keeps rank 0 from mapping to index 0.
        return ((rank + 1) * 2654435761) % self.record_count


class LatestKeys(KeyChooser):
    """Skews towards recently inserted records (YCSB's "latest").

    Popularity follows a zipfian over recency: record ``count - 1`` is
    the hottest.  ``advance`` shifts the window when inserts occur.
    """

    def __init__(self, record_count: int, theta: float = 0.99):
        super().__init__(record_count)
        self._zipf = ZipfianKeys(record_count, theta, scrambled=False)

    def advance(self) -> None:
        """Note that a new record was inserted (extends the keyspace)."""
        self.record_count += 1
        self._zipf = ZipfianKeys(self.record_count, self._zipf.theta, scrambled=False)

    def next_index(self, rng: random.Random) -> int:
        recency = self._zipf.next_index(rng)
        return self.record_count - 1 - recency

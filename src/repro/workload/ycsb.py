"""YCSB core workloads.

A :class:`YcsbWorkload` turns a per-client RNG stream into a stream of
:class:`~repro.app.commands.Command` objects according to an operation
mix, a key chooser and a record/field size model — the parameters of the
YCSB core workloads.  The paper uses an update-heavy workload on a
key-value store; :data:`WORKLOAD_UPDATE_HEAVY` is the default profile
used by all experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.app.commands import Command, KvOp
from repro.workload.keys import KeyChooser, ZipfianKeys


@dataclass(frozen=True)
class YcsbProfile:
    """The static parameters of a YCSB core workload."""

    name: str
    read_proportion: float
    update_proportion: float
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    # YCSB core default: 10 fields of 100 bytes -> 1 KB records.
    record_count: int = 1000
    value_size: int = 1000
    max_scan_length: int = 10
    zipfian_theta: float = 0.99

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation proportions must sum to 1, got {total}")


# The classic YCSB core workloads.
WORKLOAD_A = YcsbProfile("A", read_proportion=0.5, update_proportion=0.5)
WORKLOAD_B = YcsbProfile("B", read_proportion=0.95, update_proportion=0.05)
WORKLOAD_C = YcsbProfile("C", read_proportion=1.0, update_proportion=0.0)
# The paper's "update-heavy workload" (Section 7.1).  YCSB calls
# workload A "update heavy"; we keep a dedicated alias so experiments
# read like the paper.
WORKLOAD_UPDATE_HEAVY = replace(WORKLOAD_A, name="update-heavy")


@dataclass
class YcsbWorkload:
    """A stateful command generator for one experiment.

    One instance is shared by all clients of a run; each call to
    :meth:`next_command` draws from the provided per-client RNG stream,
    so two clients with identical streams produce identical op
    sequences and determinism is preserved across runs.
    """

    profile: YcsbProfile = field(default_factory=lambda: WORKLOAD_UPDATE_HEAVY)
    key_chooser: KeyChooser | None = None
    _insert_counter: int = 0

    def __post_init__(self) -> None:
        if self.key_chooser is None:
            self.key_chooser = ZipfianKeys(
                self.profile.record_count, self.profile.zipfian_theta
            )

    def key_for_index(self, index: int) -> str:
        """The record key for a record index, YCSB style."""
        return f"user{index:08d}"

    def initial_records(self) -> list[Command]:
        """INSERT commands that pre-load the store (the YCSB load phase)."""
        return [
            Command(KvOp.INSERT, self.key_for_index(i), self.profile.value_size)
            for i in range(self.profile.record_count)
        ]

    def preload(self, state_machine) -> None:
        """Apply the load phase directly to a state machine replica."""
        for command in self.initial_records():
            state_machine.apply(command)

    def next_command(self, rng: random.Random) -> Command:
        """Draw the next operation according to the workload mix."""
        profile = self.profile
        choice = rng.random()
        if choice < profile.read_proportion:
            index = self.key_chooser.next_index(rng)
            return Command(KvOp.READ, self.key_for_index(index))
        choice -= profile.read_proportion
        if choice < profile.update_proportion:
            index = self.key_chooser.next_index(rng)
            return Command(KvOp.UPDATE, self.key_for_index(index), profile.value_size)
        choice -= profile.update_proportion
        if choice < profile.insert_proportion:
            self._insert_counter += 1
            key = self.key_for_index(profile.record_count + self._insert_counter)
            return Command(KvOp.INSERT, key, profile.value_size)
        index = self.key_chooser.next_index(rng)
        length = rng.randint(1, profile.max_scan_length)
        return Command(KvOp.SCAN, self.key_for_index(index), 0, length)

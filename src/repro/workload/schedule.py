"""Time-varying load schedules.

The paper motivates proactive rejection with short load spikes between
long phases of lower utilisation.  A :class:`LoadSchedule` tells the
client driver how many clients should be active at a given simulated
time, which is how burst and spike scenarios are expressed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


class LoadSchedule(ABC):
    """Maps simulated time to the number of clients that should be active."""

    @abstractmethod
    def active_clients(self, time: float) -> int:
        """How many clients are active at simulated time ``time``."""

    def max_clients(self) -> int:
        """Upper bound on active clients (how many client nodes to build)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantSchedule(LoadSchedule):
    """A fixed number of clients for the whole run."""

    clients: int

    def active_clients(self, time: float) -> int:
        return self.clients

    def max_clients(self) -> int:
        return self.clients


@dataclass(frozen=True)
class StepSchedule(LoadSchedule):
    """A piecewise-constant schedule: ``steps`` is [(start_time, clients), ...].

    Steps must be sorted by start time; before the first step no client
    is active.
    """

    steps: tuple[tuple[float, int], ...]

    def __post_init__(self) -> None:
        times = [time for time, _ in self.steps]
        if times != sorted(times):
            raise ValueError("schedule steps must be sorted by time")

    def active_clients(self, time: float) -> int:
        active = 0
        for start, clients in self.steps:
            if time >= start:
                active = clients
            else:
                break
        return active

    def max_clients(self) -> int:
        return max((clients for _, clients in self.steps), default=0)


@dataclass(frozen=True)
class BurstSchedule(LoadSchedule):
    """A baseline load with periodic bursts.

    ``base`` clients are always active; every ``period`` seconds a burst
    of ``burst`` clients joins for ``burst_duration`` seconds.  Models
    the "high loads mostly limited to short phases" scenario from the
    paper's introduction.
    """

    base: int
    burst: int
    period: float
    burst_duration: float

    def __post_init__(self) -> None:
        if self.period <= 0 or self.burst_duration <= 0:
            raise ValueError("period and burst duration must be positive")
        if self.burst_duration > self.period:
            raise ValueError("burst duration cannot exceed the period")

    def active_clients(self, time: float) -> int:
        phase = time % self.period
        if phase < self.burst_duration:
            return self.base + self.burst
        return self.base

    def max_clients(self) -> int:
        return self.base + self.burst

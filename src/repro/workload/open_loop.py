"""Open-loop (Poisson) load generation.

Closed-loop clients self-limit: when latency grows, their request rate
drops.  Real edge populations (Section 2.3's game players, web
frontends) do not — arrivals keep coming regardless of how slow the
service is, which is exactly the regime where overload turns
*metastable*.  The :class:`OpenLoopDriver` generates request arrivals at
a (possibly time-varying) Poisson rate and hands each one to an idle
client from a finite pool; arrivals that find no idle client count as
*shed* load (an unbounded queue would otherwise make every experiment
end in trivial collapse).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.sim.loop import EventLoop

RateLike = Union[float, Callable[[float], float]]

# Re-check cadence while the rate is zero and the driver cannot know
# when it will change (opaque rate callables only; ArrivalSpec plans
# suspend until the exact phase boundary instead).
_ZERO_RATE_POLL = 0.01


@dataclass(frozen=True)
class ArrivalSpec:
    """A serialisable piecewise-constant Poisson arrival plan.

    ``steps`` is ``[(start_time, rate), ...]`` sorted by start time;
    before the first step the rate is zero.  Being a frozen dataclass of
    primitives (like the fault types), an :class:`ArrivalSpec` rides a
    :class:`~repro.cluster.runner.RunSpec` through the campaign
    planner's JSON payloads, which is what makes open-loop experiments
    (the retry-storm family) cacheable and distributable.
    """

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("arrival spec needs at least one step")
        times = [time for time, _ in self.steps]
        if times != sorted(times):
            raise ValueError("arrival steps must be sorted by time")
        if any(rate < 0.0 for _, rate in self.steps):
            raise ValueError("arrival rates must be non-negative")

    def rate_at(self, time: float) -> float:
        """The instantaneous arrival rate at simulated ``time``.

        Phase boundaries belong to the *new* phase: at exactly
        ``time == start`` the step's rate applies (``>=``), so an
        arrival landing precisely on a boundary deterministically draws
        its next gap from the new rate.
        """
        rate = 0.0
        for start, step_rate in self.steps:
            if time >= start:
                rate = step_rate
            else:
                break
        return rate

    def next_change(self, time: float) -> Optional[float]:
        """The first phase-boundary time strictly after ``time``.

        ``None`` once the last phase has begun — the rate is constant
        from there on, which lets a driver sleeping through a zero-rate
        phase suspend itself forever instead of polling.
        """
        for start, _ in self.steps:
            if start > time:
                return start
        return None

    def max_rate(self) -> float:
        """The plan's peak rate (pool-sizing aid)."""
        return max(rate for _, rate in self.steps)


class OpenLoopDriver:
    """Drives a pool of protocol clients with Poisson arrivals.

    ``rate`` is a constant (arrivals per second), a callable mapping
    simulated time to the instantaneous rate (piecewise rates model
    load spikes), or an :class:`ArrivalSpec` — the spec form draws the
    identical arrival sequence as passing ``spec.rate_at`` but lets the
    driver *suspend* through zero-rate phases (sleep until the exact
    phase boundary) instead of polling.  Clients must be built by the
    cluster builder but not started; the driver takes ownership of
    their scheduling.
    """

    def __init__(
        self,
        loop: EventLoop,
        clients: list,
        rate: Union[RateLike, ArrivalSpec],
        rng,
        stop_time: float = float("inf"),
    ):
        if not clients:
            raise ValueError("open-loop driver needs at least one client")
        self.loop = loop
        self.clients = clients
        if isinstance(rate, ArrivalSpec):
            self._spec: Optional[ArrivalSpec] = rate
            self.rate: RateLike = rate.rate_at
        else:
            self._spec = None
            self.rate = rate
        self.rng = rng
        self.stop_time = stop_time
        self._idle: deque = deque(clients)
        for client in clients:
            client.driver = self
        self.arrivals = 0
        self.shed_arrivals = 0

    # -- arrival process -------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        """Begin generating arrivals at simulated time ``at``."""
        self.loop.call_at(at, self._arrival)

    def current_rate(self) -> float:
        """The instantaneous arrival rate at the current simulated time."""
        if callable(self.rate):
            return max(0.0, self.rate(self.loop.now))
        return self.rate

    def _arrival(self) -> None:
        now = self.loop.now
        if now >= self.stop_time:
            return
        rate = self.current_rate()
        if rate <= 0.0:
            # No load right now.  With a declarative plan we know the
            # exact next phase boundary: sleep until it (or suspend
            # forever if the rate stays zero) — no busy-wait churn.
            # Opaque callables still need the short re-check poll.
            if self._spec is not None:
                boundary = self._spec.next_change(now)
                if boundary is not None and boundary < self.stop_time:
                    self.loop.call_at(boundary, self._arrival)
                return
            self.loop.call_after(_ZERO_RATE_POLL, self._arrival)
            return
        self.arrivals += 1
        if self._idle:
            client = self._idle.popleft()
            client._issue_next()
        else:
            self.shed_arrivals += 1
        self.loop.call_after(self.rng.expovariate(rate), self._arrival)

    # -- client pool -------------------------------------------------------

    def client_finished(self, client, delay: float) -> None:
        """Called by a client when its operation completes or aborts.

        ``delay`` is the client's requested unavailability (e.g. the
        post-rejection backoff); the client only rejoins the idle pool
        afterwards.
        """
        if delay > 0:
            self.loop.call_after(delay, self._idle.append, client)
        else:
            self._idle.append(client)

    @property
    def busy_clients(self) -> int:
        """Clients currently executing (or backing off from) an operation."""
        return len(self.clients) - len(self._idle)


def spike_rate(
    base: float, spike: float, start: float, duration: float
) -> Callable[[float], float]:
    """A rate function with one load spike: ``base`` everywhere, ``spike``
    during ``[start, start + duration)``."""
    def rate(time: float) -> float:
        if start <= time < start + duration:
            return spike
        return base

    return rate

"""Command and result types exchanged between clients and state machines.

Commands model their *sizes* explicitly because the simulator meters
traffic byte-accurately (Table 1); the actual stored values are
irrelevant to every experiment, so the store keeps sizes, not blobs.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple, Optional


class KvOp(Enum):
    """Key-value store operation types (the YCSB core operations)."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    INCREMENT = "increment"  # used by CounterApp


class Command(NamedTuple):
    """An application command as carried inside a REQUEST.

    ``value_size`` is the size in bytes of the value written (for
    updates/inserts) and contributes to the request's wire size;
    ``scan_length`` is the number of records a SCAN touches.
    """

    op: KvOp
    key: str
    value_size: int = 0
    scan_length: int = 0

    def payload_bytes(self) -> int:
        """Contribution of this command to the enclosing message's size."""
        return 1 + len(self.key) + self.value_size


class CommandResult(NamedTuple):
    """The outcome of executing a command on a state machine."""

    ok: bool
    reply_bytes: int
    value_size: Optional[int] = None

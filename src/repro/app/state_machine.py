"""The deterministic state-machine interface replicas execute against.

Replication protocols call :meth:`StateMachine.apply` for every ordered
command and use :meth:`snapshot` / :meth:`restore` for checkpointing
(Section 4.4 of the paper).  Implementations must be deterministic:
identical command sequences must produce identical states and results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.app.commands import Command, CommandResult


class StateMachine(ABC):
    """A deterministic application replicated by the protocols."""

    @abstractmethod
    def apply(self, command: Command) -> CommandResult:
        """Execute one command and return its result."""

    @abstractmethod
    def execution_cost(self, command: Command) -> float:
        """Simulated CPU seconds executing ``command`` costs a replica."""

    @abstractmethod
    def snapshot(self) -> Any:
        """Produce a checkpointable copy of the full application state."""

    @abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Replace the application state with a snapshot."""

    @abstractmethod
    def snapshot_bytes(self) -> int:
        """Approximate serialized size of a snapshot (for transfer costs)."""

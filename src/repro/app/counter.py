"""A minimal replicated counter application.

Used by tests and the quickstart example where the focus is protocol
behaviour rather than workload realism.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.app.commands import Command, CommandResult, KvOp
from repro.app.state_machine import StateMachine


class CounterApp(StateMachine):
    """One integer counter per key; INCREMENT adds one, READ returns it."""

    def __init__(self, base_execution_cost: float = 1e-6):
        self.base_execution_cost = base_execution_cost
        self._counters: dict[str, int] = {}
        self.operations_applied = 0

    def value(self, key: str) -> int:
        """Current value of the counter under ``key`` (0 if never touched)."""
        return self._counters.get(key, 0)

    def apply(self, command: Command) -> CommandResult:
        self.operations_applied += 1
        if command.op is KvOp.INCREMENT:
            self._counters[command.key] = self._counters.get(command.key, 0) + 1
            return CommandResult(ok=True, reply_bytes=9, value_size=self._counters[command.key])
        if command.op is KvOp.READ:
            return CommandResult(ok=True, reply_bytes=9, value_size=self.value(command.key))
        raise ValueError(f"counter app cannot execute {command.op}")

    def execution_cost(self, command: Command) -> float:
        return self.base_execution_cost

    def snapshot(self) -> Any:
        return dict(self._counters)

    def restore(self, snapshot: Any) -> None:
        self._counters = dict(snapshot)

    def snapshot_bytes(self) -> int:
        return sum(len(key) + 8 for key in self._counters)

    def digest(self) -> int:
        """Order-insensitive, process-stable digest of the counter state."""
        payload = "\x00".join(
            f"{key}\x01{value}" for key, value in sorted(self._counters.items())
        )
        return int.from_bytes(hashlib.sha256(payload.encode()).digest()[:8], "big")

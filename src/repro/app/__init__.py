"""Replicated applications (the deterministic state machines).

The paper's evaluation replicates a key-value store driven by YCSB
(Section 7.1); :class:`KeyValueStore` implements it.  A trivial
:class:`CounterApp` is provided for tests and the quickstart example.
"""

from repro.app.commands import Command, CommandResult, KvOp
from repro.app.counter import CounterApp
from repro.app.kvstore import KeyValueStore
from repro.app.state_machine import StateMachine

__all__ = [
    "Command",
    "CommandResult",
    "CounterApp",
    "KeyValueStore",
    "KvOp",
    "StateMachine",
]

"""A YCSB-style replicated key-value store.

This is the application of the paper's evaluation (Section 7.1): a
key-value store exercised with an update-heavy workload.  The store
tracks the byte size of every value rather than value contents — every
experiment only ever observes sizes (traffic) and determinism (state
digests), never the bytes themselves.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.app.commands import Command, CommandResult, KvOp
from repro.app.state_machine import StateMachine


class KeyValueStore(StateMachine):
    """A deterministic in-memory key-value store.

    ``base_execution_cost`` is the simulated CPU time of a point
    operation; SCANs cost proportionally more.  These costs are what
    make replicas saturate, so they are the main calibration knob of
    the cluster profile.
    """

    def __init__(self, base_execution_cost: float = 2e-6):
        if base_execution_cost < 0:
            raise ValueError(f"negative execution cost: {base_execution_cost}")
        self.base_execution_cost = base_execution_cost
        self._data: dict[str, int] = {}
        self.operations_applied = 0

    def __len__(self) -> int:
        return len(self._data)

    def get_size(self, key: str) -> int | None:
        """Size of the value stored under ``key``, or None if absent."""
        return self._data.get(key)

    def apply(self, command: Command) -> CommandResult:
        self.operations_applied += 1
        op = command.op
        if op is KvOp.READ:
            size = self._data.get(command.key)
            if size is None:
                return CommandResult(ok=False, reply_bytes=1)
            return CommandResult(ok=True, reply_bytes=1 + size, value_size=size)
        if op is KvOp.UPDATE or op is KvOp.INSERT:
            self._data[command.key] = command.value_size
            return CommandResult(ok=True, reply_bytes=1)
        if op is KvOp.SCAN:
            total = 0
            count = 0
            # Deterministic scan: ordered iteration from the start key.
            for key in sorted(self._data):
                if key >= command.key:
                    total += self._data[key]
                    count += 1
                    if count >= command.scan_length:
                        break
            return CommandResult(ok=True, reply_bytes=1 + total, value_size=total)
        raise ValueError(f"key-value store cannot execute {op}")

    def execution_cost(self, command: Command) -> float:
        if command.op is KvOp.SCAN:
            return self.base_execution_cost * max(1, command.scan_length)
        return self.base_execution_cost

    def snapshot(self) -> Any:
        return dict(self._data)

    def restore(self, snapshot: Any) -> None:
        self._data = dict(snapshot)

    def snapshot_bytes(self) -> int:
        # Keys plus an 8-byte size slot each; values are stored as sizes
        # but a real checkpoint would carry the bytes, so count them.
        return sum(len(key) + 8 + size for key, size in self._data.items())

    def digest(self) -> int:
        """An order-insensitive state digest for cross-replica comparison.

        Process-stable (unlike ``hash()``, which is salted per process)
        so chaos-run summaries are byte-identical across invocations.
        """
        return _stable_digest(self._data)


def _stable_digest(data: dict[str, int]) -> int:
    payload = "\x00".join(f"{key}\x01{value}" for key, value in sorted(data.items()))
    return int.from_bytes(hashlib.sha256(payload.encode()).digest()[:8], "big")

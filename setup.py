"""Legacy setup shim: metadata lives in pyproject.toml.

Kept so that editable installs work offline with old setuptools/pip
combinations that cannot build PEP 660 wheels.
"""

from setuptools import setup

setup()
